"""Small metric helpers used by experiments and their tests."""

from __future__ import annotations


def speedup(baseline_seconds: float, improved_seconds: float) -> float:
    """How many times faster the improved time is than the baseline."""
    if improved_seconds <= 0:
        raise ValueError("improved time must be positive")
    return baseline_seconds / improved_seconds


def percent_improvement(baseline_seconds: float, improved_seconds: float) -> float:
    """Throughput improvement in percent (the paper's 10-300% figures)."""
    return (speedup(baseline_seconds, improved_seconds) - 1.0) * 100.0
