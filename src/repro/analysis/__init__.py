"""Measurement helpers: tables, figure-shaped text output, and request
stream analysis."""

from repro.analysis.report import Table, bar_chart, format_series
from repro.analysis.metrics import speedup, percent_improvement
from repro.analysis.requestlog import (
    LogSummary,
    compare_streams,
    render_summary,
    summarize,
)

__all__ = [
    "Table",
    "bar_chart",
    "format_series",
    "speedup",
    "percent_improvement",
    "LogSummary",
    "summarize",
    "render_summary",
    "compare_streams",
]
