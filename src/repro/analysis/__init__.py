"""Measurement helpers: tables, figure-shaped text output, and request
stream analysis."""

from repro.analysis.report import Table, bar_chart, format_series
from repro.analysis.metrics import (
    LatencySummary,
    jain_fairness,
    percent_improvement,
    percentile,
    speedup,
    summarize_latencies,
)
from repro.analysis.requestlog import (
    LogSummary,
    compare_streams,
    render_summary,
    summarize,
)

__all__ = [
    "Table",
    "bar_chart",
    "format_series",
    "speedup",
    "percent_improvement",
    "percentile",
    "LatencySummary",
    "summarize_latencies",
    "jain_fairness",
    "LogSummary",
    "summarize",
    "render_summary",
    "compare_streams",
]
