"""Exception hierarchy for the C-FFS reproduction.

File system errors deliberately mirror POSIX errno semantics so that the
workloads and examples can treat FFS and C-FFS uniformly.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class DiskError(ReproError):
    """Base class for simulated-disk errors."""


class AddressError(DiskError):
    """A sector or block address fell outside the device."""


class MediaError(DiskError):
    """A permanent (hard) media fault: the sector is gone for good."""


class MediaReadError(MediaError):
    """A read hit an unreadable sector (uncorrectable ECC)."""


class MediaWriteError(MediaError):
    """A write failed permanently; part of an extent may have landed."""


class ChecksumError(MediaError):
    """A read returned data whose CRC disagrees with the sidecar.

    Raised by the resilience layer *instead of* returning the bytes, so
    torn or bit-rotted blocks are detected — never silently installed
    into the buffer cache.
    """


class TransientDiskError(DiskError):
    """A recoverable fault (timeout, recalibration); retrying may succeed."""


class DeviceDegraded(DiskError):
    """The device refused a request because its health no longer allows
    it (spare pool gone, retry budget exhausted, or FAILED outright)."""


class PowerLoss(DiskError):
    """Power was cut; the device accepts no further requests."""


class FileSystemError(ReproError):
    """Base class for file system errors (POSIX-flavoured)."""

    errno_name = "EIO"


class FileNotFound(FileSystemError):
    """Path component does not exist (ENOENT)."""

    errno_name = "ENOENT"


class FileExists(FileSystemError):
    """Target name already exists (EEXIST)."""

    errno_name = "EEXIST"


class NotADirectory(FileSystemError):
    """A non-directory appeared where a directory was required (ENOTDIR)."""

    errno_name = "ENOTDIR"


class IsADirectory(FileSystemError):
    """A directory appeared where a file was required (EISDIR)."""

    errno_name = "EISDIR"


class DirectoryNotEmpty(FileSystemError):
    """rmdir of a non-empty directory (ENOTEMPTY)."""

    errno_name = "ENOTEMPTY"


class NoSpace(FileSystemError):
    """The file system is out of blocks or inodes (ENOSPC)."""

    errno_name = "ENOSPC"


class InvalidArgument(FileSystemError):
    """Bad offset, name, or flag combination (EINVAL)."""

    errno_name = "EINVAL"


class NameTooLong(FileSystemError):
    """A path component exceeds the maximum name length (ENAMETOOLONG)."""

    errno_name = "ENAMETOOLONG"


class BadFileDescriptor(FileSystemError):
    """Operation on a closed or unknown file descriptor (EBADF)."""

    errno_name = "EBADF"


class CrossDevice(FileSystemError):
    """Rename or link across file systems (EXDEV)."""

    errno_name = "EXDEV"


class ReadOnlyFileSystem(FileSystemError):
    """A mutating operation reached a volume demoted to read-only
    service (EROFS) — the graceful-degradation alternative to dying
    when the storage below can no longer absorb writes."""

    errno_name = "EROFS"


class CorruptFileSystem(FileSystemError):
    """An on-disk structure failed a sanity check."""

    errno_name = "EIO"


class JournalCorrupt(FileSystemError):
    """The on-disk journal failed a structural check (bad magic, CRC
    mismatch on the header, impossible geometry).  The committed state
    of the volume is still intact — only log replay is unavailable."""

    errno_name = "EIO"


class ReplayError(FileSystemError):
    """Journal replay could not be applied (a committed record names a
    block outside the volume, or the log contradicts itself)."""

    errno_name = "EIO"


class FsckError(ReproError):
    """The offline checker found an inconsistency it could not repair."""


class LintError(ReproError):
    """A source file handed to reprolint could not be read or parsed."""
