"""Tests for the directory re-grouping maintenance pass."""

import random

import pytest

from repro.errors import NotADirectory
from repro.fsck import fsck_cffs
from tests.conftest import make_cffs


def churn_directory(fs, n_ops=400, seed=3):
    """Create/delete churn leaving a fragmented directory."""
    fs.mkdir("/d")
    rng = random.Random(seed)
    live = []
    serial = 0
    for _ in range(n_ops):
        if live and rng.random() < 0.45:
            fs.unlink(live.pop(rng.randrange(len(live))))
        else:
            path = "/d/f%05d" % serial
            serial += 1
            fs.write_file(path, bytes([serial % 256]) * 1024)
            live.append(path)
    fs.sync()
    return live


def cold_read_all(fs, paths):
    fs.drop_caches()
    start = fs.device.clock.now
    before = fs.device.disk.stats.snapshot()
    for path in sorted(paths):
        fs.read_file(path)
    delta = fs.device.disk.stats.delta(before)
    return fs.device.clock.now - start, delta.total_requests


class TestRegroup:
    def test_content_preserved(self, cffs):
        live = churn_directory(cffs)
        expected = {p: cffs.read_file(p) for p in live}
        cffs.regroup_directory("/d")
        cffs.sync()
        cffs.drop_caches()
        for path, data in expected.items():
            assert cffs.read_file(path) == data

    def test_improves_cold_reads(self, cffs):
        live = churn_directory(cffs)
        t_before, r_before = cold_read_all(cffs, live)
        moved = cffs.regroup_directory("/d")
        cffs.sync()
        t_after, r_after = cold_read_all(cffs, live)
        assert moved == len(live)
        assert r_after <= r_before
        assert t_after < t_before

    def test_blocks_become_adjacent(self, cffs):
        live = churn_directory(cffs)
        cffs.regroup_directory("/d")
        bnos = sorted(cffs._resolve(p).direct[0] for p in live)
        span = cffs.config.group_span
        # Files pack densely: the block range covers little more than
        # the file count, rounded to whole extents.
        needed_extents = -(-len(live) // span)
        assert bnos[-1] - bnos[0] < needed_extents * span + span

    def test_image_clean_after_regroup(self, cffs):
        churn_directory(cffs)
        cffs.regroup_directory("/d")
        cffs.sync()
        report = fsck_cffs(cffs.device)
        assert report.ok, report.render()

    def test_costs_io(self, cffs):
        churn_directory(cffs)
        cffs.sync()
        start = cffs.device.clock.now
        cffs.regroup_directory("/d")
        cffs.sync()
        assert cffs.device.clock.now > start  # the pass is not free

    def test_idempotent_second_pass(self, cffs):
        live = churn_directory(cffs)
        cffs.regroup_directory("/d")
        cffs.sync()
        # A second pass moves everything again (simple policy) but must
        # preserve contents and cleanliness.
        cffs.regroup_directory("/d")
        cffs.sync()
        assert fsck_cffs(cffs.device).ok
        assert cffs.read_file(sorted(live)[0]) is not None

    def test_skips_large_files(self, cffs):
        cffs.mkdir("/d")
        cffs.write_file("/d/big", b"B" * (20 * 4096))
        cffs.write_file("/d/small", b"s" * 1024)
        moved = cffs.regroup_directory("/d")
        assert moved == 1  # only the small file's block

    def test_not_a_directory(self, cffs):
        cffs.create("/file")
        with pytest.raises(NotADirectory):
            cffs.regroup_directory("/file")

    def test_noop_when_grouping_disabled(self):
        fs = make_cffs(grouping=False)
        fs.mkdir("/d")
        fs.write_file("/d/f", b"x" * 1024)
        assert fs.regroup_directory("/d") == 0

    def test_empty_directory(self, cffs):
        cffs.mkdir("/d")
        assert cffs.regroup_directory("/d") == 0
