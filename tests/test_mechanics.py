"""Tests for seek and rotation models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.mechanics import RotationModel, SeekCurve


def curve() -> SeekCurve:
    return SeekCurve.from_three_points(1.0, 8.0, 16.0, 2000)


class TestSeekCurve:
    def test_zero_distance_is_free(self):
        assert curve().seek_time(0) == 0.0

    def test_single_cylinder_matches(self):
        assert curve().seek_time(1) == pytest.approx(1.0e-3, rel=0.15)

    def test_average_point_matches(self):
        d_avg = max(2, 2000 // 3)
        assert curve().seek_time(d_avg) == pytest.approx(8.0e-3, rel=0.05)

    def test_full_stroke_matches(self):
        assert curve().seek_time(1999) == pytest.approx(16.0e-3, rel=0.02)

    def test_symmetric_in_direction(self):
        c = curve()
        assert c.seek_time(-500) == c.seek_time(500)

    def test_short_seeks_rise_quickly(self):
        """'this cost rises quickly for slightly longer seek distances'
        [Worthington95]: the sqrt region is concave."""
        c = curve()
        assert c.seek_time(4) - c.seek_time(1) > c.seek_time(104) - c.seek_time(101)

    def test_rejects_bad_ordering(self):
        with pytest.raises(ValueError):
            SeekCurve.from_three_points(10.0, 8.0, 16.0, 2000)
        with pytest.raises(ValueError):
            SeekCurve.from_three_points(0.0, 8.0, 16.0, 2000)

    def test_rejects_tiny_disk(self):
        with pytest.raises(ValueError):
            SeekCurve.from_three_points(1.0, 8.0, 16.0, 2)

    @given(st.integers(min_value=1, max_value=1998))
    @settings(max_examples=200)
    def test_monotone_nondecreasing(self, d):
        c = curve()
        assert c.seek_time(d + 1) >= c.seek_time(d)

    @given(st.integers(min_value=1, max_value=1999))
    @settings(max_examples=100)
    def test_bounded_by_endpoints(self, d):
        c = curve()
        assert c.seek_time(1) <= c.seek_time(d) <= c.seek_time(1999) + 1e-12


class TestRotation:
    def test_period(self):
        assert RotationModel(5400).period_s == pytest.approx(60.0 / 5400)

    def test_angle_wraps(self):
        r = RotationModel(5400)
        assert r.angle_at(r.period_s) == pytest.approx(0.0, abs=1e-9)

    def test_wait_for_current_sector_is_zero(self):
        r = RotationModel(6000)
        # At t=0 the platter is at angle 0, sector 0 is under the head.
        assert r.wait_for_sector(0.0, 0, 32) == pytest.approx(0.0, abs=1e-12)

    def test_wait_for_opposite_sector_is_half_period(self):
        r = RotationModel(6000)
        assert r.wait_for_sector(0.0, 16, 32) == pytest.approx(r.period_s / 2)

    def test_wait_never_exceeds_period(self):
        r = RotationModel(7200)
        for s in range(64):
            assert 0.0 <= r.wait_for_sector(0.123, s, 64) < r.period_s

    def test_transfer_time_full_track(self):
        r = RotationModel(5400)
        assert r.transfer_time(80, 80) == pytest.approx(r.period_s)

    def test_transfer_rejects_negative(self):
        with pytest.raises(ValueError):
            RotationModel(5400).transfer_time(-1, 80)

    @given(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.integers(min_value=0, max_value=79),
    )
    @settings(max_examples=200)
    def test_wait_lands_exactly_on_sector(self, t, sector):
        """After waiting, the platter angle is exactly the sector start."""
        r = RotationModel(5400)
        wait = r.wait_for_sector(t, sector, 80)
        angle = r.angle_at(t + wait)
        target = sector / 80
        assert angle == pytest.approx(target, abs=1e-6) or angle == pytest.approx(
            target + 1.0, abs=1e-6
        )
