"""Tests for the on-board read segments and write-behind buffer."""

import pytest

from repro.disk.cache import ReadCache, ReadSegment, WriteBuffer


class TestReadSegment:
    def seg(self) -> ReadSegment:
        return ReadSegment(
            start=100, fill_base=108, fill_time=1.0, sector_time=0.001, end_cap=140,
        )

    def test_original_request_available_immediately(self):
        assert self.seg().available_at(104) == 1.0

    def test_prefetch_availability_is_linear(self):
        seg = self.seg()
        assert seg.available_at(108) == pytest.approx(1.001)
        assert seg.available_at(117) == pytest.approx(1.010)

    def test_extent_grows_with_time(self):
        seg = self.seg()
        assert seg.extent_at(1.0) == 108
        assert seg.extent_at(1.010) == 118
        assert seg.extent_at(100.0) == 140  # capped

    def test_freeze_stops_fill(self):
        seg = self.seg()
        seg.freeze(1.0055)
        assert seg.frozen_extent == 113
        assert seg.extent_at(100.0) == 113


class TestReadCache:
    def test_miss_on_empty(self):
        cache = ReadCache(segments=2, readahead_sectors=32)
        assert cache.lookup(0, 8, 0.0) is None

    def test_full_hit_after_install(self):
        cache = ReadCache(2, 32)
        cache.install(100, 8, completion=1.0, sector_time=0.001, disk_end=10000)
        hit = cache.lookup(100, 8, 2.0)
        assert hit is not None
        _seg, ready = hit
        assert ready == 1.0

    def test_streaming_continuation_within_cap(self):
        cache = ReadCache(2, 32)
        cache.install(100, 8, 1.0, 0.001, 10000)
        hit = cache.lookup(108, 8, 1.0)  # right where prefetch continues
        assert hit is not None
        _seg, ready = hit
        assert ready == pytest.approx(1.008)

    def test_miss_beyond_prefetch_cap(self):
        cache = ReadCache(2, 32)
        cache.install(100, 8, 1.0, 0.001, 10000)
        # Cap is 100+8+32 = 140; a request starting there missed the stream.
        assert cache.lookup(140, 8, 5.0) is None

    def test_frozen_segment_serves_only_filled(self):
        cache = ReadCache(2, 32)
        cache.install(100, 8, 1.0, 0.001, 10000)
        cache.freeze_all(1.004)  # filled to 112
        assert cache.lookup(100, 8, 2.0) is not None
        assert cache.lookup(100, 12, 2.0) is not None
        assert cache.lookup(100, 13, 2.0) is None

    def test_lru_eviction(self):
        cache = ReadCache(2, 32)
        cache.install(100, 8, 1.0, 0.001, 10000)
        cache.install(500, 8, 2.0, 0.001, 10000)
        cache.install(900, 8, 3.0, 0.001, 10000)
        assert cache.lookup(100, 8, 4.0) is None  # oldest evicted
        assert cache.lookup(500, 8, 4.0) is not None
        assert cache.lookup(900, 8, 4.0) is not None

    def test_invalidate_range_drops_overlap(self):
        cache = ReadCache(2, 32)
        cache.install(100, 8, 1.0, 0.001, 10000)
        cache.invalidate_range(104, 4)
        assert cache.lookup(100, 4, 2.0) is None

    def test_invalidate_range_keeps_disjoint(self):
        cache = ReadCache(2, 32)
        cache.install(100, 8, 1.0, 0.001, 10000)
        cache.invalidate_range(5000, 8)
        assert cache.lookup(100, 8, 2.0) is not None

    def test_disabled_cache_installs_nothing(self):
        cache = ReadCache(0, 32)
        assert cache.install(100, 8, 1.0, 0.001, 10000) is None
        assert cache.lookup(100, 8, 2.0) is None

    def test_extend_cap(self):
        cache = ReadCache(2, 32)
        seg = cache.install(100, 8, 1.0, 0.001, 10000)
        cache.extend_cap(seg, 200, 10000)
        assert seg.end_cap == 232

    def test_extend_cap_clamped_to_disk(self):
        cache = ReadCache(2, 32)
        seg = cache.install(100, 8, 1.0, 0.001, 300)
        cache.extend_cap(seg, 290, 300)
        assert seg.end_cap == 300


class TestWriteBuffer:
    def test_add_and_drain(self):
        wb = WriteBuffer(capacity_sectors=100)
        wb.add(10, 8, when=1.0)
        start, n, ready = wb.pop_drain()
        assert (start, n, ready) == (10, 8, 1.0)
        assert wb.empty

    def test_same_range_absorbs(self):
        wb = WriteBuffer(100)
        assert wb.add(10, 8) is False
        assert wb.add(10, 8) is True
        assert wb.pending_sectors == 8

    def test_resize_of_pending_range(self):
        wb = WriteBuffer(100)
        wb.add(10, 8)
        assert wb.add(10, 16) is True
        assert wb.pending_sectors == 16

    def test_overflow_detection(self):
        wb = WriteBuffer(16)
        wb.add(0, 8)
        assert not wb.would_overflow(8)
        assert wb.would_overflow(9)

    def test_covering_range(self):
        wb = WriteBuffer(100)
        wb.add(10, 8)
        assert wb.covering_range(10, 8) == (10, 8)
        assert wb.covering_range(12, 2) == (10, 8)
        assert wb.covering_range(12, 8) is None
        assert wb.covering_range(2, 4) is None

    def test_overlapping(self):
        wb = WriteBuffer(100)
        wb.add(10, 8)
        wb.add(30, 8)
        assert wb.overlapping(14, 20) == [(10, 8), (30, 8)]
        assert wb.overlapping(18, 4) == []

    def test_drain_coalesces_adjacent(self):
        wb = WriteBuffer(1000)
        wb.add(10, 8, when=1.0)
        wb.add(18, 8, when=2.0)
        wb.add(26, 8, when=3.0)
        start, n, ready = wb.pop_drain()
        assert (start, n) == (10, 24)
        assert ready == 3.0  # cannot drain before the newest member existed
        assert wb.empty

    def test_drain_does_not_coalesce_gaps(self):
        wb = WriteBuffer(1000)
        wb.add(10, 8)
        wb.add(26, 8)
        start, n, _ = wb.pop_drain()
        assert (start, n) == (10, 8)

    def test_drain_clook_ascending(self):
        """The first drain starts at the rotor (0), so addresses come
        out ascending regardless of arrival order."""
        wb = WriteBuffer(1000)
        for s in (50, 10, 90):
            wb.add(s, 8)
        assert [wb.pop_drain()[0] for _ in range(3)] == [10, 50, 90]

    def test_drain_clook_wraps(self):
        wb = WriteBuffer(1000)
        for s in (10, 50):
            wb.add(s, 8)
        assert wb.pop_drain()[0] == 10
        assert wb.pop_drain()[0] == 50
        wb.add(20, 8)
        wb.add(200, 8)
        # Rotor sits past 50; 200 is next ascending, then wrap to 20.
        assert wb.pop_drain()[0] == 200
        assert wb.pop_drain()[0] == 20

    def test_drain_coalesce_cap(self):
        wb = WriteBuffer(100000, max_coalesce_sectors=16)
        wb.add(0, 8)
        wb.add(8, 8)
        wb.add(16, 8)
        start, n, _ = wb.pop_drain()
        assert (start, n) == (0, 16)
