"""Resilience layer tests: CRC32C, layout, health, device, scrubber, fsck.

The contract under test: every read through a ResilientBlockDevice is
either verified-correct or raises ChecksumError; hard write faults heal
transparently via the spare pool; the remap table survives a detach/
attach cycle; exhausting the spares demotes to READ_ONLY instead of
crashing; and fsck can check and rebuild the sidecar and remap table.
"""

import pytest

from repro.blockdev.device import BLOCK_SIZE, BlockDevice
from repro.engine.eventloop import EventLoop
from repro.errors import (
    AddressError,
    ChecksumError,
    CorruptFileSystem,
    MediaReadError,
    ReadOnlyFileSystem,
)
from repro.faults import FaultSchedule, FaultyBlockDevice
from repro.fsck import fsck_resilience, is_resilient, open_logical
from repro.resilience import (
    CRCS_PER_BLOCK,
    HealthMonitor,
    HealthState,
    LogicalView,
    ResiliencePolicy,
    ResilientBlockDevice,
    Scrubber,
    ZERO_CRC,
    compute_geometry,
    crc32c,
    pack_crc_block,
    try_unpack_header,
    unpack_crc_block,
)
from repro.resilience.checksums import _TABLE
from repro.resilience.layout import ResilienceHeader
from tests.conftest import TEST_PROFILE


def block(tag: int) -> bytes:
    return bytes([tag & 0xFF]) * BLOCK_SIZE


def resilient(schedule=None, policy=None, profile=TEST_PROFILE):
    inner = BlockDevice(profile)
    if schedule is not None:
        inner = FaultyBlockDevice(inner, schedule)
    return ResilientBlockDevice.format(inner, policy)


# -- checksums ----------------------------------------------------------------


def _crc32c_reference(data: bytes) -> int:
    """Byte-at-a-time CRC32C, the ground truth for the sliced version."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


class TestCrc32c:
    def test_check_vector(self):
        # The CRC32C check value from RFC 3720 / the Castagnoli paper.
        assert crc32c(b"123456789") == 0xE3069283

    def test_matches_bytewise_reference(self):
        import random
        rng = random.Random("crc-vectors")
        for _ in range(50):
            data = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(0, 300)))
            assert crc32c(data) == _crc32c_reference(data)

    def test_zero_block_fast_path_is_honest(self):
        assert crc32c(bytes(BLOCK_SIZE)) == _crc32c_reference(bytes(BLOCK_SIZE))
        assert ZERO_CRC == crc32c(bytes(BLOCK_SIZE))

    def test_continuation(self):
        whole = crc32c(b"hello world")
        # A continued CRC run must equal the one-shot CRC.
        assert crc32c(b" world", crc32c(b"hello")) == whole

    def test_sidecar_codec_roundtrip(self):
        crcs = [(i * 2654435761) & 0xFFFFFFFF for i in range(CRCS_PER_BLOCK)]
        raw = pack_crc_block(crcs)
        assert len(raw) == BLOCK_SIZE
        assert unpack_crc_block(raw) == crcs


# -- layout -------------------------------------------------------------------


class TestLayout:
    def test_geometry_accounts_for_every_block(self):
        geo = compute_geometry(3328, n_spares=32)
        assert (geo.usable_blocks + geo.n_crc_blocks
                + geo.n_spares + 1 == geo.total_blocks)
        assert geo.n_crc_blocks * CRCS_PER_BLOCK >= geo.usable_blocks
        assert geo.header_block == geo.total_blocks - 1

    def test_crc_location(self):
        geo = compute_geometry(3328, n_spares=32)
        sidecar, offset = geo.crc_location(CRCS_PER_BLOCK + 5)
        assert sidecar == geo.crc_start + 1
        assert offset == 20

    def test_header_roundtrip_with_tables(self):
        geo = compute_geometry(3328, n_spares=32)
        header = ResilienceHeader(geo, spares_used=3,
                                  remap={10: 0, 700: 2}, lost={55})
        back = try_unpack_header(header.pack(), geo.total_blocks)
        assert back is not None
        assert back.spares_used == 3
        assert back.remap == {10: 0, 700: 2}
        assert back.lost == {55}

    def test_header_rejects_noise_and_corruption(self):
        geo = compute_geometry(3328, n_spares=32)
        assert try_unpack_header(bytes(BLOCK_SIZE), geo.total_blocks) is None
        raw = bytearray(ResilienceHeader(geo).pack())
        raw[20] ^= 0xFF    # damage inside the CRC-protected body
        with pytest.raises(CorruptFileSystem):
            try_unpack_header(bytes(raw), geo.total_blocks)


# -- health machine -----------------------------------------------------------


class TestHealth:
    def test_monotonic_one_way(self):
        h = HealthMonitor()
        assert h.transition(HealthState.DEGRADED, 1.0, "remap")
        assert not h.transition(HealthState.HEALTHY, 2.0, "nope")
        assert h.state is HealthState.DEGRADED
        assert h.transition(HealthState.READ_ONLY, 3.0, "spares gone")
        assert not h.transition(HealthState.DEGRADED, 4.0, "nope")
        assert [t.state for t in h.transitions] == [
            HealthState.DEGRADED, HealthState.READ_ONLY]

    def test_gatekeeping(self):
        h = HealthMonitor()
        h.check_writable()
        h.transition(HealthState.READ_ONLY, 1.0, "budget")
        with pytest.raises(ReadOnlyFileSystem):
            h.check_writable()
        h.check_readable()   # reads still fine
        h.transition(HealthState.FAILED, 2.0, "power")
        with pytest.raises(Exception):
            h.check_readable()


# -- the device ---------------------------------------------------------------


class TestResilientDevice:
    def test_verified_roundtrip(self):
        dev = resilient()
        dev.write_block(7, block(7))
        assert dev.read_block(7) == block(7)
        assert dev.stats.verified_reads == 1
        assert dev.health.state is HealthState.HEALTHY

    def test_unwritten_blocks_verify_as_zero(self):
        dev = resilient()
        assert dev.read_block(100) == bytes(BLOCK_SIZE)
        assert dev.stats.verified_reads == 1

    def test_usable_window_hides_reserved_tail(self):
        dev = resilient()
        assert dev.total_blocks == dev.geometry.usable_blocks
        assert dev.total_blocks < dev.inner.total_blocks
        with pytest.raises(AddressError):
            dev.read_block(dev.total_blocks)

    def test_corruption_detected_not_returned(self):
        dev = resilient()
        dev.write_block(5, block(5))
        bad = bytearray(block(5))
        bad[100] ^= 0x40
        dev.poke_block(5, bytes(bad))   # bypasses the checksummed path
        with pytest.raises(ChecksumError):
            dev.read_block(5)
        assert dev.stats.checksum_failures == 1
        assert dev.health.state is HealthState.DEGRADED

    def test_rewrite_heals_a_lost_block(self):
        dev = resilient()
        dev.write_block(5, block(5))
        dev.poke_block(5, block(99))
        with pytest.raises(ChecksumError):
            dev.read_block(5)
        dev.write_block(5, block(6))    # fresh data, fresh CRC
        assert dev.read_block(5) == block(6)
        assert not dev.header.lost

    def test_hard_write_fault_remaps_transparently(self):
        schedule = FaultSchedule(seed=1).break_writes([20])
        dev = resilient(schedule)
        dev.write_block(20, block(2))   # inner write fails; spare absorbs it
        assert dev.read_block(20) == block(2)
        assert dev.header.remap == {20: 0}
        assert dev.stats.remaps == 1 and dev.stats.write_heals == 1
        assert dev.health.state is HealthState.DEGRADED

    def test_remap_survives_detach_attach(self):
        schedule = FaultSchedule(seed=1).break_writes([20])
        dev = resilient(schedule)
        dev.write_block(20, block(2))
        dev.write_block(21, block(3))
        dev.flush()
        again = ResilientBlockDevice.attach(dev.inner)
        assert again.header.remap == {20: 0}
        assert again.read_block(20) == block(2)
        assert again.read_block(21) == block(3)

    def test_spare_exhaustion_degrades_to_read_only(self):
        schedule = FaultSchedule(seed=1).break_writes([20, 21, 22])
        dev = resilient(schedule, ResiliencePolicy(n_spares=2))
        dev.write_block(20, block(1))
        dev.write_block(21, block(2))
        with pytest.raises(ReadOnlyFileSystem):
            dev.write_block(22, block(3))
        assert dev.health.state is HealthState.READ_ONLY
        # Reads keep working; further writes are refused, not crashed.
        assert dev.read_block(20) == block(1)
        with pytest.raises(ReadOnlyFileSystem):
            dev.write_block(30, block(4))

    def test_weak_block_absorbed_within_retry_budget(self):
        schedule = FaultSchedule(seed=1).weaken_reads([40], failures=1)
        dev = resilient(schedule)
        dev.write_block(40, block(4))
        assert dev.read_block(40) == block(4)

    def test_unreadable_block_raises_after_budget(self):
        schedule = FaultSchedule(seed=1).break_reads([40])
        dev = resilient(schedule)
        dev.write_block(40, block(4))
        with pytest.raises(MediaReadError):
            dev.read_block(40)
        assert dev.stats.unreadable_blocks == 1
        assert dev.health.state is HealthState.DEGRADED

    def test_extent_survives_one_bad_neighbour(self):
        schedule = FaultSchedule(seed=1).break_reads([41])
        dev = resilient(schedule)
        dev.write_extent(40, [block(1), block(2), block(3)])
        with pytest.raises(MediaReadError):
            dev.read_extent(40, 3)
        # The per-block fallback still serves the good neighbours.
        assert dev.read_block(40) == block(1)
        assert dev.read_block(42) == block(3)

    def test_batch_paths_roundtrip_across_remap(self):
        schedule = FaultSchedule(seed=1).break_writes([50])
        dev = resilient(schedule)
        dev.write_batch({49: block(1), 50: block(2), 51: block(3)})
        assert dev.header.remap == {50: 0}
        out = dev.read_batch([49, 50, 51])
        assert out == {49: block(1), 50: block(2), 51: block(3)}


# -- scrubbing ----------------------------------------------------------------


class TestScrubber:
    def test_clean_pass_is_all_ok(self):
        dev = resilient()
        dev.write_block(3, block(3))
        tally = Scrubber(dev).run_pass()
        assert tally == {"ok": dev.total_blocks}

    def test_scrub_rescues_weak_data_block(self):
        schedule = FaultSchedule(seed=1).weaken_reads([60], failures=1)
        dev = resilient(schedule)
        dev.write_block(60, block(6))
        verdict = dev.scrub_block(60)
        assert verdict == "rescued"
        assert dev.header.remap == {60: 0}
        # The spare copy no longer touches the weak location.
        assert dev.read_block(60) == block(6)
        assert dev.stats.scrub_rescues == 1

    def test_scrub_does_not_burn_spares_on_weak_empty_blocks(self):
        schedule = FaultSchedule(seed=1).weaken_reads([61], failures=1)
        dev = resilient(schedule)
        assert dev.scrub_block(61) == "ok"
        assert dev.header.remap == {}

    def test_scrub_heals_unreadable_empty_block(self):
        schedule = FaultSchedule(seed=1).break_reads([62])
        dev = resilient(schedule)
        assert dev.scrub_block(62) == "healed"
        assert dev.read_block(62) == bytes(BLOCK_SIZE)

    def test_scrub_condemns_rotted_block(self):
        schedule = FaultSchedule(seed=1).rot([63])
        dev = resilient(schedule)
        dev.write_block(63, block(3))
        schedule.rot([63])              # re-arm: the write cancelled decay
        assert dev.scrub_block(63) == "lost"
        assert dev.scrub_block(63) == "lost-known"
        with pytest.raises(ChecksumError):
            dev.read_block(63)          # lost blocks fail fast

    def test_attach_schedules_bounded_passes_on_event_loop(self):
        dev = resilient()
        dev.write_block(9, block(9))
        loop = EventLoop()
        scrubber = Scrubber(dev, batch_blocks=512, interval=0.01)
        scrubber.attach(loop, passes=2)
        end = loop.run()                # terminates: rescheduling is bounded
        assert scrubber.stats.passes_completed == 2
        assert scrubber.stats.blocks_scrubbed == 2 * dev.total_blocks
        assert end > 0.0


# -- fsck over the resilience region ------------------------------------------


class TestFsckResilience:
    def test_clean_device_checks_clean(self):
        dev = resilient()
        dev.write_block(5, block(5))
        dev.flush()
        assert is_resilient(dev.inner)
        report = fsck_resilience(dev.inner)
        assert report.pristine, report.render()

    def test_bare_image_is_not_resilient(self):
        assert not is_resilient(BlockDevice(TEST_PROFILE))
        assert open_logical(BlockDevice(TEST_PROFILE)) is None

    def test_stale_sidecar_detected_and_rebuilt(self):
        dev = resilient()
        dev.write_block(5, block(5))
        dev.flush()
        # Crash-stale sidecar: the data changed after the last flush.
        dev.inner.poke_block(5, block(6))
        report = fsck_resilience(dev.inner)
        assert report.ok and not report.pristine   # rebuildable, not fatal
        repaired = fsck_resilience(dev.inner, repair=True)
        assert repaired.fixed
        assert fsck_resilience(dev.inner).pristine
        again = ResilientBlockDevice.attach(dev.inner)
        assert again.read_block(5) == block(6)

    def test_remap_table_inconsistency_repaired(self):
        dev = resilient()
        dev.write_block(5, block(5))
        # Corrupt the header's accounting: a remap pointing past the
        # consumed-spares watermark.
        dev.header.remap[5] = 1
        dev.header.spares_used = 0
        dev.inner.poke_block(dev.geometry.header_block, dev.header.pack())
        dev.inner.poke_block(dev.geometry.spare_block(1), block(5))
        report = fsck_resilience(dev.inner, repair=True)
        assert report.fixed
        assert fsck_resilience(dev.inner).ok

    def test_logical_view_poke_maintains_sidecar(self):
        dev = resilient()
        dev.write_block(5, block(5))
        dev.flush()
        view = LogicalView(dev.inner, dev.header)
        view.poke_block(5, block(9))    # the fsck repair channel
        assert fsck_resilience(dev.inner).pristine
        assert ResilientBlockDevice.attach(dev.inner).read_block(5) == block(9)


# -- the cache boundary -------------------------------------------------------


class TestCacheBoundary:
    """A block that fails verification must never be installed into the
    buffer cache — the ChecksumError propagates and the miss is counted."""

    def test_checksum_error_rejected_not_cached(self):
        from repro import obs
        from repro.cache.buffercache import BufferCache

        dev = resilient()
        dev.write_block(5, block(5))
        dev.poke_block(5, block(99))    # corrupt behind the CRC's back
        cache = BufferCache(dev, capacity_blocks=16)
        tracer = obs.install(obs.Tracer())
        try:
            with pytest.raises(ChecksumError):
                cache.get(5)
        finally:
            obs.uninstall()
        assert cache.peek(5) is None    # nothing installed
        assert tracer.registry.counter("cache.checksum_rejects").value == 1
        # A healing rewrite makes the same block cacheable again.
        dev.write_block(5, block(6))
        assert cache.get(5).data == block(6)
