"""Tests for the multi-client concurrency engine.

Three properties are load-bearing:

1. **Determinism** — identical runs produce identical simulated
   timelines (op for op, float for float).
2. **Single-client equivalence** — one client through the engine costs
   the same simulated time as the classic synchronous driver: the
   engine is a strict generalization, not a different model.
3. **Scheduling matters** — on a contended queue, positional policies
   (SSTF, C-LOOK) spend no more seek time than FCFS.
"""

import pytest

from repro.blockdev.device import BlockDevice
from repro.clock import SimClock
from repro.engine import (
    DiskQueue,
    Engine,
    EventLoop,
    run_multiclient,
)
from repro.errors import InvalidArgument
from repro.workloads import run_smallfile
from repro.workloads.opscript import smallfile_ops
from tests.conftest import TEST_PROFILE, make_cffs


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.call_at(3.0, seen.append, "c")
        loop.call_at(1.0, seen.append, "a")
        loop.call_at(2.0, seen.append, "b")
        end = loop.run()
        assert seen == ["a", "b", "c"]
        assert end == 3.0
        assert loop.now == 3.0

    def test_ties_run_in_scheduling_order(self):
        loop = EventLoop()
        seen = []
        for tag in ("first", "second", "third"):
            loop.call_at(1.0, seen.append, tag)
        loop.run()
        assert seen == ["first", "second", "third"]

    def test_callbacks_may_schedule_more_events(self):
        loop = EventLoop()
        seen = []

        def tick(n):
            seen.append(n)
            if n < 3:
                loop.call_later(1.0, tick, n + 1)

        loop.call_at(0.5, tick, 0)
        assert loop.run() == pytest.approx(3.5)
        assert seen == [0, 1, 2, 3]

    def test_past_events_clamp_to_now(self):
        loop = EventLoop(SimClock(10.0))
        seen = []
        loop.call_at(5.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [10.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(InvalidArgument):
            EventLoop().call_later(-1.0, lambda: None)


def _scattered_read_burst(policy: str, lbas):
    """Submit a burst of far-apart reads at t=0; return (disk, done)."""
    device = BlockDevice(TEST_PROFILE)
    loop = EventLoop()
    queue = DiskQueue(loop, device.disk, policy)
    done = []
    for lba in lbas:
        queue.submit("read", lba, 8, client=0, on_complete=done.append)
    loop.run()
    return device.disk, done


class TestDiskQueue:
    LBAS = [20000, 400, 12000, 25000, 3000, 18000, 800, 9000, 22000, 5000]

    def test_unknown_policy_rejected(self):
        device = BlockDevice(TEST_PROFILE)
        with pytest.raises(InvalidArgument):
            DiskQueue(EventLoop(), device.disk, "elevator")

    def test_all_requests_complete_with_delays(self):
        disk, done = _scattered_read_burst("fcfs", self.LBAS)
        assert len(done) == len(self.LBAS)
        # First request never waits; later ones queue behind it.
        delays = sorted(r.queue_delay for r in done)
        assert delays[0] == 0.0
        assert delays[-1] > 0.0
        for r in done:
            assert r.complete_time >= r.dispatch_time >= r.submit_time

    def test_fcfs_preserves_submission_order(self):
        _disk, done = _scattered_read_burst("fcfs", self.LBAS)
        assert [r.lba for r in done] == self.LBAS

    def test_positional_policies_do_not_seek_more_than_fcfs(self):
        seek = {}
        for policy in ("fcfs", "sstf", "clook"):
            disk, _ = _scattered_read_burst(policy, self.LBAS)
            seek[policy] = disk.stats.seek_time
        assert seek["sstf"] <= seek["fcfs"]
        assert seek["clook"] <= seek["fcfs"]
        # On this trace the improvement is real, not a tie.
        assert seek["sstf"] < 0.9 * seek["fcfs"]

    def test_queue_depth_accounting(self):
        disk, _ = _scattered_read_burst("fcfs", self.LBAS)
        device = BlockDevice(TEST_PROFILE)
        loop = EventLoop()
        queue = DiskQueue(loop, device.disk, "fcfs")
        for lba in self.LBAS:
            queue.submit("read", lba, 8)
        assert queue.depth == len(self.LBAS) - 1  # one already in service
        loop.run()
        assert queue.depth == 0
        assert queue.stats.max_depth == len(self.LBAS) - 1
        assert queue.stats.mean_queue_depth > 0.0
        assert queue.stats.completed == len(self.LBAS)

    def test_flush_barrier_jumps_positional_queue(self):
        device = BlockDevice(TEST_PROFILE)
        loop = EventLoop()
        queue = DiskQueue(loop, device.disk, "sstf")
        order = []
        queue.submit("read", 20000, 8,
                     on_complete=lambda r: order.append("far"))
        queue.submit("read", 100, 8,
                     on_complete=lambda r: order.append("near"))
        queue.flush_barrier(on_complete=lambda r: order.append("flush"))
        loop.run()
        # The barrier dispatches ahead of the queued positional choice.
        assert order == ["far", "flush", "near"]


def _engine_smallfile_phase_times(fs, paths, file_size, phases):
    """Run the small-file phases through a 1-client engine, mirroring
    run_smallfile's measurement discipline (sync ends a phase, caches
    drop between phases)."""
    engine = Engine(fs)
    client = engine.add_client()

    def setup(f):
        f.mkdir("/bench")
        f.sync()
        f.drop_caches()

    engine.run_sync(setup)
    times = {}
    for phase in phases:
        start = engine.now
        engine.run_phase({client: smallfile_ops(paths, file_size, phase)}, phase)
        engine.run_sync(lambda f: f.sync())
        times[phase] = engine.now - start
        engine.run_sync(lambda f: f.drop_caches())
    return times, client


class TestEngineEquivalence:
    PHASES = ("create", "read", "overwrite", "delete")

    def test_single_client_matches_synchronous_driver(self):
        n_files, file_size = 60, 1024
        paths = ["/bench/f%06d" % i for i in range(n_files)]

        sync_fs = make_cffs()
        sync_result = run_smallfile(
            sync_fs, n_files=n_files, file_size=file_size, phases=self.PHASES)

        engine_fs = make_cffs()
        engine_times, client = _engine_smallfile_phase_times(
            engine_fs, paths, file_size, self.PHASES)

        for phase in self.PHASES:
            reference = sync_result[phase].seconds
            assert engine_times[phase] == pytest.approx(reference, rel=1e-3), phase
        # A lone client never waits in the host queue.
        assert client.queue_delay == 0.0

    def test_single_client_no_queueing_in_multiclient_driver(self):
        result = run_multiclient(
            label="cffs", n_clients=1, files_per_client=30,
            profile=TEST_PROFILE)
        for phase in result.phases.values():
            assert phase.mean_queue_depth == 0.0
            assert phase.fairness == 1.0


class TestEngineDeterminism:
    def _run(self):
        return run_multiclient(
            label="cffs", n_clients=4, files_per_client=12,
            file_size=1024, profile=TEST_PROFILE)

    def test_identical_runs_produce_identical_timelines(self):
        a = self._run()
        b = self._run()
        assert a.total_seconds == b.total_seconds
        for phase in a.phases:
            pa, pb = a[phase], b[phase]
            assert pa.seconds == pb.seconds
            assert pa.latency == pb.latency
            assert pa.mean_queue_depth == pb.mean_queue_depth
            for ca, cb in zip(pa.per_client, pb.per_client):
                assert ca == cb

    def test_concurrency_actually_overlaps(self):
        result = self._run()
        # With four clients on one arm, requests must have queued.
        assert result["create"].mean_queue_depth > 0.0
        assert any(c.queue_delay > 0.0
                   for c in result["create"].per_client)


class TestEngineApi:
    def test_run_sync_refuses_pending_events(self):
        fs = make_cffs()
        engine = Engine(fs)
        engine.loop.call_later(1.0, lambda: None)
        with pytest.raises(InvalidArgument):
            engine.run_sync(lambda f: None)

    def test_per_client_accounting(self):
        fs = make_cffs()
        engine = Engine(fs)
        client = engine.add_client("solo")
        engine.run_sync(lambda f: f.mkdir("/d"))
        ops = smallfile_ops(["/d/f%d" % i for i in range(5)], 2048, "create")
        engine.run_phase({client: ops}, "create")
        assert len(client.records) == 5
        assert client.cpu_seconds > 0.0
        assert client.writes > 0
        assert all(r.phase == "create" for r in client.records)
        assert client.latencies("create") == [r.latency for r in client.records]

    def test_postmark_and_hypertext_workloads_run(self):
        for workload in ("postmark", "hypertext"):
            result = run_multiclient(
                label="cffs", n_clients=2, files_per_client=6,
                workload=workload, profile=TEST_PROFILE)
            (phase,) = result.phases.values()
            assert phase.n_ops > 0
            assert phase.seconds > 0.0


def _faulty_burst(policy, lbas, schedule, retry=None):
    from repro.faults import RetryPolicy

    device = BlockDevice(TEST_PROFILE)
    loop = EventLoop()
    queue = DiskQueue(loop, device.disk, policy, faults=schedule,
                      retry=retry or RetryPolicy())
    done = []
    for lba in lbas:
        queue.submit("read", lba, 8, client=lba % 3, on_complete=done.append)
    loop.run()
    return queue, done


class TestDiskQueueFaults:
    """The queue under failing requests: balanced accounting, bounded
    retries, no starvation under positional policies."""

    LBAS = [20000, 400, 12000, 25000, 3000, 18000, 800, 9000, 22000, 5000]

    def test_transient_fault_retried_and_completed(self):
        from repro.faults import FaultSchedule

        schedule = FaultSchedule().fail_read(0, transient=True)
        for policy in ("fcfs", "sstf", "clook"):
            queue, done = _faulty_burst(policy, self.LBAS, schedule)
            assert len(done) == len(self.LBAS)
            assert all(r.error is None for r in done)
            assert queue.stats.retried == 1
            assert queue.stats.failed == 0
            assert sum(r.retries for r in done) == 1
            # submitted == completed even with the requeue in between.
            assert queue.stats.submitted == queue.stats.completed == len(self.LBAS)

    def test_hard_fault_completes_with_error(self):
        from repro.faults import FaultSchedule

        schedule = FaultSchedule().fail_read(2)
        queue, done = _faulty_burst("fcfs", self.LBAS, schedule)
        assert len(done) == len(self.LBAS)
        failed = [r for r in done if r.error is not None]
        assert len(failed) == 1
        assert failed[0].lba == self.LBAS[2]
        assert "hard" in failed[0].error
        assert queue.stats.failed == 1
        assert queue.stats.completed == len(self.LBAS)

    def test_exhausted_retries_surface_as_error(self):
        from repro.faults import FaultSchedule, RetryPolicy

        # Every dispatch of every read fails transiently: the retry
        # budget caps the attempts and the request fails for good —
        # no starvation, no infinite loop.
        schedule = FaultSchedule(transient_rate=1.0)
        retry = RetryPolicy(max_attempts=3)
        queue, done = _faulty_burst("sstf", self.LBAS, schedule, retry)
        assert len(done) == len(self.LBAS)
        assert all(r.error is not None for r in done)
        assert all(r.retries == retry.max_attempts - 1 for r in done)
        assert queue.stats.failed == len(self.LBAS)
        assert queue.stats.retried == (retry.max_attempts - 1) * len(self.LBAS)

    def test_faulty_runs_are_deterministic(self):
        from repro.faults import FaultSchedule

        def run():
            schedule = FaultSchedule(seed=11, transient_rate=0.3)
            queue, done = _faulty_burst("clook", self.LBAS, schedule)
            return [(r.lba, r.retries, r.error, r.complete_time) for r in done]

        assert run() == run()

    def test_requeued_request_not_starved_under_sstf(self):
        from repro.faults import FaultSchedule

        # The far request fails once; SSTF would always prefer the
        # near cluster, but the retried request must still complete.
        schedule = FaultSchedule().fail_read(0, transient=True)
        lbas = [25000] + [100 + 8 * i for i in range(12)]
        device = BlockDevice(TEST_PROFILE)
        loop = EventLoop()
        from repro.faults import RetryPolicy

        queue = DiskQueue(loop, device.disk, "sstf", faults=schedule,
                          retry=RetryPolicy())
        done = []
        for lba in lbas:
            queue.submit("read", lba, 8, on_complete=done.append)
        loop.run()
        assert len(done) == len(lbas)
        assert all(r.error is None for r in done)
        assert queue.depth == 0


class TestEngineFaults:
    def test_multiclient_rides_out_transient_faults(self):
        from repro.faults import FaultSchedule

        clean = run_multiclient(label="cffs", n_clients=3,
                                files_per_client=6, phases=("create",))
        faulty = run_multiclient(label="cffs", n_clients=3,
                                 files_per_client=6, phases=("create",),
                                 faults=FaultSchedule(seed=5,
                                                      transient_rate=0.25))
        phase = faulty["create"]
        assert phase.n_ops == clean["create"].n_ops  # no op lost
        assert phase.retried > 0
        assert phase.failed == 0
        assert sum(c.retries for c in phase.per_client) > 0
        assert all(c.io_errors == 0 for c in phase.per_client)
        # Retry latency is real, but an errored dispatch does not move
        # the arm, so total time may go either way; what must hold is
        # that the clean run saw no fault traffic at all.
        assert clean["create"].retried == 0 and clean["create"].failed == 0

    def test_multiclient_hard_faults_abort_ops_not_the_run(self):
        from repro.faults import FaultSchedule

        schedule = FaultSchedule().fail_write(4).fail_write(9)
        result = run_multiclient(label="ffs", n_clients=2,
                                 files_per_client=8, phases=("create",),
                                 faults=schedule)
        phase = result["create"]
        assert phase.failed == 2
        assert sum(c.io_errors for c in phase.per_client) >= 1
        # Every client still finished its script.
        assert phase.n_ops == 2 * 8

    def test_render_shows_fault_columns_when_faulty(self):
        from repro.engine import render_multiclient
        from repro.faults import FaultSchedule

        result = run_multiclient(label="cffs", n_clients=2,
                                 files_per_client=5, phases=("create",),
                                 faults=FaultSchedule(seed=2,
                                                      transient_rate=0.3))
        text = render_multiclient(result)
        assert "retry" in text and "err" in text
        assert "retried" in text


class TestDiskQueueRetryMetrics:
    """Retry traffic must surface in the obs registry: a counter per
    requeue and a latency histogram for requests that needed retries."""

    LBAS = [20000, 400, 12000, 25000, 3000]

    def test_retries_counted_and_latency_observed(self):
        from repro import obs
        from repro.faults import FaultSchedule

        tracer = obs.install(obs.Tracer())
        try:
            # Dispatches 0 and 1 hit transients (each dispatch consumes
            # one schedule index), so retry traffic definitely flows.
            schedule = (FaultSchedule().fail_read(0, transient=True)
                        .fail_read(1, transient=True))
            queue, done = _faulty_burst("fcfs", self.LBAS, schedule)
        finally:
            obs.uninstall()
        assert queue.stats.retried == 2
        registry = tracer.registry
        assert registry.counter("queue.retried").value == 2
        assert registry.counter("queue.retried.read").value == 2
        retried = [r for r in done if r.retries > 0]
        assert retried and sum(r.retries for r in retried) == 2
        hist = registry.histogram("queue.retry_latency")
        # One observation per request that survived retries, measuring
        # the client-visible latency: original submit (not the requeue's
        # reset submit mark) to final completion.
        assert hist.total == len(retried)
        assert hist.sum == pytest.approx(sum(
            r.complete_time - r.first_submit_time for r in retried))
        assert hist.sum >= len(retried) * 0.002   # backoff sleeps included

    def test_untraced_runs_cost_nothing_and_keep_stats(self):
        from repro.faults import FaultSchedule

        schedule = FaultSchedule().fail_read(0, transient=True)
        queue, done = _faulty_burst("fcfs", self.LBAS, schedule)
        assert queue.stats.retried == 1  # queue accounting works untraced
        assert all(r.error is None for r in done)
