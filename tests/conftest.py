"""Shared fixtures: small simulated disks and file system factories.

Tests use a deliberately small drive (≈13 MB) and small cylinder
groups so mkfs and workloads run fast; the benchmark suite uses the
full ST31200 profile.
"""

from __future__ import annotations

import pytest

from repro.blockdev.device import BlockDevice
from repro.cache.policy import MetadataPolicy
from repro.core.filesystem import CFFS, CFFSConfig
from repro.disk.profiles import DriveProfile
from repro.ffs.filesystem import FFS, FFSConfig

TEST_PROFILE = DriveProfile(
    name="TestDrive 13MB",
    year=1996,
    rpm=5400.0,
    heads=4,
    zone_table=((100, 40), (100, 24)),
    single_cyl_seek_ms=1.0,
    avg_seek_ms=8.0,
    full_seek_ms=16.0,
    command_overhead_ms=1.0,
    bus_mb_per_s=10.0,
    cache_segments=2,
    readahead_sectors=32,
    write_cache=True,
    write_buffer_kb=128,
)

TEST_PROFILE_PLAIN = TEST_PROFILE.with_overrides(
    name="TestDrive plain", write_cache=False, cache_segments=0, readahead_sectors=0
)


def make_device(profile: DriveProfile = TEST_PROFILE) -> BlockDevice:
    return BlockDevice(profile)


def make_ffs(policy: MetadataPolicy = MetadataPolicy.SYNC_METADATA, **overrides) -> FFS:
    config = FFSConfig(
        blocks_per_cg=512, inodes_per_cg=256, policy=policy, cache_blocks=512,
        **overrides,
    )
    return FFS.mkfs(make_device(), config)


def make_cffs(
    policy: MetadataPolicy = MetadataPolicy.SYNC_METADATA,
    embedded: bool = True,
    grouping: bool = True,
    **overrides,
) -> CFFS:
    config = CFFSConfig(
        blocks_per_cg=512,
        embedded_inodes=embedded,
        explicit_grouping=grouping,
        policy=policy,
        cache_blocks=512,
        **overrides,
    )
    return CFFS.mkfs(make_device(), config)


@pytest.fixture
def device() -> BlockDevice:
    return make_device()


@pytest.fixture
def ffs() -> FFS:
    return make_ffs()


@pytest.fixture
def cffs() -> CFFS:
    return make_cffs()


@pytest.fixture(params=["ffs", "cffs", "cffs-conventional"])
def anyfs(request):
    """Every file system implementation, for shared-behaviour tests."""
    if request.param == "ffs":
        return make_ffs()
    if request.param == "cffs":
        return make_cffs()
    return make_cffs(embedded=False, grouping=False)
