"""Tests for the simulated drive's timing behaviour.

These encode the mechanical facts the paper's argument rests on:
positioning dominates small transfers, sequential streams run at media
rate, strided access defeats prefetch, and write-behind absorbs
same-block rewrites.
"""

import random

import pytest

from repro.disk.drive import SimulatedDisk
from repro.disk.profiles import SEAGATE_ST31200
from repro.errors import AddressError
from tests.conftest import TEST_PROFILE, TEST_PROFILE_PLAIN


def plain_disk() -> SimulatedDisk:
    return SimulatedDisk(TEST_PROFILE_PLAIN)


def cached_disk() -> SimulatedDisk:
    return SimulatedDisk(TEST_PROFILE)


class TestBasics:
    def test_read_advances_clock(self):
        d = plain_disk()
        d.read(0, 8)
        assert d.clock.now > 0

    def test_out_of_range_rejected(self):
        d = plain_disk()
        with pytest.raises(AddressError):
            d.read(d.total_sectors, 1)
        with pytest.raises(AddressError):
            d.read(-1, 1)
        with pytest.raises(AddressError):
            d.read(0, 0)

    def test_stats_count_requests(self):
        d = plain_disk()
        d.read(0, 8)
        d.write(100, 8)
        assert d.stats.reads == 1
        assert d.stats.writes == 1
        assert d.stats.sectors_read == 8
        assert d.stats.sectors_written == 8

    def test_request_size_histogram(self):
        d = plain_disk()
        d.read(0, 8)
        d.read(100, 8)
        d.read(200, 128)
        assert d.stats.request_sizes[8] == 2
        assert d.stats.request_sizes[128] == 1


class TestMechanicalCosts:
    def test_small_read_dominated_by_positioning(self):
        """Most of a random 4 KB access is seek+rotation, not transfer."""
        d = plain_disk()
        rng = random.Random(3)
        for _ in range(100):
            d.read(rng.randrange(0, d.total_sectors - 8), 8)
        mech = d.stats
        assert mech.seek_time + mech.rotation_time > 4 * mech.transfer_time

    def test_large_read_dominated_by_transfer(self):
        d = plain_disk()
        d.read(0, 4000)
        assert d.stats.transfer_time > d.stats.seek_time + d.stats.rotation_time

    def test_access_time_sublinear_in_size(self):
        """Figure 2's shape: 16x the data costs far less than 16x the time."""
        d1 = plain_disk()
        d1.read(d1.total_sectors // 2, 8)
        t_small = d1.clock.now
        d2 = plain_disk()
        d2.read(d2.total_sectors // 2, 128)
        t_large = d2.clock.now
        assert t_large < 4 * t_small

    def test_near_seek_cheaper_than_far(self):
        d1 = plain_disk()
        d1.read(0, 8)
        t0 = d1.clock.now
        d1.read(64, 8)  # same neighbourhood
        near = d1.clock.now - t0

        d2 = plain_disk()
        d2.read(0, 8)
        t0 = d2.clock.now
        d2.read(d2.total_sectors - 64, 8)  # other end of the disk
        far = d2.clock.now - t0
        assert far > near


class TestReadCacheBehaviour:
    def test_sequential_requests_hit_prefetch(self):
        d = cached_disk()
        lba = 0
        for _ in range(20):
            d.read(lba, 8)
            lba += 8
        assert d.stats.cache_hits >= 18

    def test_strided_requests_miss_prefetch(self):
        d = cached_disk()
        lba = 0
        stride = TEST_PROFILE.readahead_sectors + 16
        for _ in range(20):
            d.read(lba, 8)
            lba += stride
        assert d.stats.cache_hits == 0

    def test_sequential_stream_approaches_media_rate(self):
        d = cached_disk()
        lba = 0
        for _ in range(50):
            d.read(lba, 128)
            lba += 128
        elapsed = d.clock.now
        mb = 50 * 128 * 512 / 1e6
        rate = mb / elapsed
        media = TEST_PROFILE.max_media_mb_per_s
        assert rate > 0.6 * media

    def test_write_invalidates_overlapping_segment(self):
        d = cached_disk()
        d.read(0, 8)
        d.write(4, 8)
        d.flush_write_buffer()
        # The segment covering [0,8) must be gone; re-read is a miss.
        before = d.stats.cache_hits
        d.read(0, 8)
        assert d.stats.cache_hits == before


class TestWriteBehind:
    def test_sync_write_completes_fast_with_cache(self):
        d = cached_disk()
        d.read(0, 8)  # position somewhere
        t0 = d.clock.now
        d.write(5000, 8)
        host_latency = d.clock.now - t0
        # Far cheaper than a mechanical access (seek+rotation ~ 10ms).
        assert host_latency < 0.004

    def test_same_block_rewrites_absorbed(self):
        d = cached_disk()
        for _ in range(50):
            d.write(5000, 8)
        assert d.stats.write_absorbed > 20

    def test_flush_drains_everything(self):
        d = cached_disk()
        for i in range(10):
            d.write(1000 + i * 64, 8)
        d.flush_write_buffer()
        assert d.write_buffer is not None
        assert d.write_buffer.empty

    def test_flush_costs_time(self):
        d = cached_disk()
        for i in range(10):
            d.write(1000 + i * 640, 8)
        t0 = d.clock.now
        d.flush_write_buffer()
        assert d.clock.now > t0

    def test_read_of_pending_write_served_from_buffer(self):
        d = cached_disk()
        d.write(5000, 8)
        before_hits = d.stats.cache_hits
        d.read(5000, 8)
        assert d.stats.cache_hits == before_hits + 1

    def test_partial_overlap_forces_drain(self):
        d = cached_disk()
        d.write(5000, 8)
        d.read(4996, 16)  # spans buffered and unbuffered sectors
        assert d.write_buffer.empty

    def test_buffer_full_stalls_host(self):
        d = cached_disk()
        cap = d.write_buffer.capacity
        # Pour in far more than the buffer holds, scattered so drains
        # are slow.
        n = cap // 8 * 3
        for i in range(n):
            d.write((i * 4096) % (d.total_sectors - 8), 8)
        assert d.stats.stall_time > 0

    def test_no_write_cache_pays_mechanics(self):
        d = plain_disk()
        t0 = d.clock.now
        d.write(5000, 8)
        assert d.clock.now - t0 > 0.002


class TestDeterminism:
    def test_same_sequence_same_times(self):
        def run() -> float:
            d = cached_disk()
            rng = random.Random(7)
            for _ in range(100):
                op = rng.random()
                lba = rng.randrange(0, d.total_sectors - 128)
                if op < 0.5:
                    d.read(lba, 8)
                else:
                    d.write(lba, 8)
            d.flush_write_buffer()
            return d.clock.now

        assert run() == run()


class TestST31200Profile:
    def test_random_4k_access_in_paper_range(self):
        """A random 4 KB access on the platform disk costs ~15-20 ms."""
        d = SimulatedDisk(SEAGATE_ST31200)
        rng = random.Random(5)
        t0 = d.clock.now
        for _ in range(100):
            d.read(rng.randrange(0, d.total_sectors - 8), 8)
        avg_ms = (d.clock.now - t0) / 100 * 1000
        assert 12.0 < avg_ms < 24.0

    def test_media_rate_in_period_range(self):
        """Early-90s 1GB drives moved a few MB/s off the media."""
        assert 2.5 < SEAGATE_ST31200.max_media_mb_per_s < 5.0
