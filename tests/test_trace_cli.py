"""The ``repro trace`` subcommand and the ``--trace`` benchmark flags."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.engine import run_multiclient


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    obs.uninstall()


class TestTraceCommand:
    def test_chrome_export_schema(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        rc = main(["trace", "--workload", "smallfile", "--files", "20",
                   "--format", "chrome", "--out", str(out)])
        assert rc == 0
        assert "trace: " in capsys.readouterr().out
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert doc["otherData"]["clock"] == "simulated"
        assert events[0]["ph"] == "M"
        layers = {e.get("cat") for e in events}
        assert {"run", "workload", "vfs", "cache", "disk"} <= layers
        for event in events[1:]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_flame_and_metrics_outputs(self, tmp_path):
        out = tmp_path / "t.flame"
        metrics = tmp_path / "m.json"
        rc = main(["trace", "--workload", "smallfile", "--files", "20",
                   "--format", "flame", "--out", str(out),
                   "--metrics", str(metrics)])
        assert rc == 0
        lines = out.read_text().splitlines()
        assert lines == sorted(lines)
        assert any(line.startswith("run.smallfile;") for line in lines)
        snap = json.loads(metrics.read_text())
        assert snap["disk.reads"] > 0
        assert snap["disk.request_sectors"]["total"] > 0

    def test_postmark_jsonl(self, tmp_path):
        out = tmp_path / "t.jsonl"
        rc = main(["trace", "--workload", "postmark", "--files", "20",
                   "--format", "jsonl", "--out", str(out)])
        assert rc == 0
        first = json.loads(out.read_text().splitlines()[0])
        assert first["layer"] == "run"
        assert first["op"] == "postmark"

    def test_unknown_fs_label_fails_cleanly(self, tmp_path, capsys):
        rc = main(["trace", "--fs", "ntfs",
                   "--out", str(tmp_path / "t.json")])
        assert rc == 1
        assert "unknown file system" in capsys.readouterr().err

    def test_tracer_uninstalled_after_run(self, tmp_path):
        main(["trace", "--workload", "smallfile", "--files", "10",
              "--out", str(tmp_path / "t.json")])
        assert obs.active() is None


class TestTraceFlags:
    def test_bench_trace_flag(self, tmp_path, capsys):
        out = tmp_path / "b.flame"
        rc = main(["bench", "--files", "15", "--configs", "conventional,cffs",
                   "--trace", str(out), "--trace-format", "flame"])
        assert rc == 0
        text = out.read_text()
        # One root stack per benchmarked config.
        assert "bench.conventional;" in text
        assert "bench.cffs;" in text
        assert obs.active() is None

    def test_multiclient_trace_flag(self, tmp_path):
        out = tmp_path / "mc.jsonl"
        rc = main(["multiclient", "--clients", "2", "--files", "5",
                   "--trace", str(out), "--trace-format", "jsonl"])
        assert rc == 0
        spans = [json.loads(line) for line in out.read_text().splitlines()]
        assert {s["layer"] for s in spans} >= {"queue", "disk"}
        assert obs.active() is None


class TestEngineIntegration:
    def test_multiclient_tracer_carries_phases_and_metrics(self):
        tracer = obs.Tracer()
        run_multiclient(n_clients=2, files_per_client=5,
                        phases=("create", "read"), tracer=tracer)
        assert obs.active() is None  # run_multiclient cleans up
        phases = {s.attrs.get("phase") for s in tracer.spans
                  if s.layer == "queue"}
        assert {"create", "read"} <= phases
        names = tracer.registry.names()
        assert "queue.completed" in names
        assert "engine.events" in names
        # Per-client accounting lands in the same registry.
        assert any(n.startswith("engine.c00.") for n in names)
        assert tracer.registry.counter("queue.completed").value > 0
