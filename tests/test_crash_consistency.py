"""Crash-consistency: the integrity claims behind the write ordering.

A "crash" is a copy of the device's current on-media state — delayed
writes still sitting dirty in the buffer cache are lost, synchronous
writes have landed.  Under ``SYNC_METADATA`` the ordering rules must
leave every crash image *recoverable*: fsck may find repairable
bitmap/descriptor staleness and leaked space, but never dangling names,
torn directory chains, or doubly-used blocks.

For C-FFS the paper's stronger claim also holds: because a name and its
embedded inode share one sector, create and delete are atomic — there
is no window in which the name exists without its inode.
"""


from repro.blockdev.device import BlockDevice
from repro.cache.policy import MetadataPolicy
from repro.fsck import fsck_cffs, fsck_ffs
from tests.conftest import TEST_PROFILE, make_cffs, make_ffs


def crash_image(fs) -> BlockDevice:
    """The device as a crash would leave it (media state only)."""
    image = BlockDevice(TEST_PROFILE)
    for bno, data in fs.device._blocks.items():
        image.poke_block(bno, data)
    return image


def crash_check(fs, checker) -> None:
    report = checker(crash_image(fs))
    assert report.ok, report.render()


SCRIPT = [
    ("mkdir", "/d"),
    ("write", "/d/a", 500),
    ("write", "/d/b", 9000),
    ("mkdir", "/d/sub"),
    ("write", "/d/sub/c", 3000),
    ("link", "/d/a", "/d/a2"),
    ("rename", "/d/b", "/d/sub/b"),
    ("unlink", "/d/a"),
    ("write", "/d/a", 700),     # recreate over the freed name
    ("unlink", "/d/a2"),
    ("truncate", "/d/sub/b", 100),
    ("unlink", "/d/sub/c"),
    ("rmdir_prep", "/d/sub"),
    ("rmdir", "/d/sub"),
]


def apply_op(fs, op) -> None:
    kind = op[0]
    if kind == "mkdir":
        fs.mkdir(op[1])
    elif kind == "write":
        fs.write_file(op[1], b"c" * op[2])
    elif kind == "link":
        fs.link(op[1], op[2])
    elif kind == "rename":
        fs.rename(op[1], op[2])
    elif kind == "unlink":
        fs.unlink(op[1])
    elif kind == "truncate":
        fs.truncate(op[1], op[2])
    elif kind == "rmdir_prep":
        for name in fs.readdir(op[1]):
            fs.unlink(op[1] + "/" + name)
    elif kind == "rmdir":
        fs.rmdir(op[1])


class TestCffsCrashes:
    def test_recoverable_after_every_operation(self):
        fs = make_cffs()
        for op in SCRIPT:
            apply_op(fs, op)
            crash_check(fs, fsck_cffs)

    def test_recoverable_mid_benchmark(self):
        fs = make_cffs()
        fs.mkdir("/bench")
        for i in range(40):
            fs.write_file("/bench/f%02d" % i, b"d" * 1024)
            if i % 7 == 0:
                crash_check(fs, fsck_cffs)
        for i in range(40):
            fs.unlink("/bench/f%02d" % i)
            if i % 7 == 0:
                crash_check(fs, fsck_cffs)

    def test_create_is_atomic(self):
        """After a crash, a created file either fully exists (name and
        inode together) or not at all — never a dangling name."""
        fs = make_cffs()
        fs.mkdir("/d")
        fs.create("/d/atomic")
        image = crash_image(fs)
        report = fsck_cffs(image)
        assert report.ok, report.render()
        # The single ordering write carried name+inode: the file is there.
        assert report.files == 1

    def test_delete_is_atomic(self):
        fs = make_cffs()
        fs.mkdir("/d")
        fs.create("/d/doomed")
        fs.sync()
        fs.unlink("/d/doomed")
        report = fsck_cffs(crash_image(fs))
        assert report.ok, report.render()
        assert report.files == 0  # name and inode vanished together

    def test_pristine_after_sync(self):
        fs = make_cffs()
        for op in SCRIPT:
            apply_op(fs, op)
        fs.sync()
        report = fsck_cffs(crash_image(fs))
        assert report.pristine, report.render()

    def test_softdep_crash_loses_but_never_corrupts_synced_state(self):
        """Delayed metadata: a crash may lose recent operations
        entirely (they were only in the cache), but what was synced
        stays recoverable."""
        fs = make_cffs(policy=MetadataPolicy.DELAYED_METADATA)
        fs.mkdir("/d")
        fs.write_file("/d/durable", b"x" * 2000)
        fs.sync()
        fs.write_file("/d/volatile", b"y" * 2000)  # never synced
        report = fsck_cffs(crash_image(fs))
        assert report.ok, report.render()
        assert report.files == 1  # only the synced file exists


class TestFfsCrashes:
    def test_recoverable_after_every_operation(self):
        fs = make_ffs()
        for op in SCRIPT:
            apply_op(fs, op)
            crash_check(fs, fsck_ffs)

    def test_create_never_leaves_dangling_name(self):
        """FFS ordering: the inode write precedes the dirent write, so
        a crash can leak an inode but never dangle a name."""
        fs = make_ffs()
        fs.mkdir("/d")
        for i in range(25):
            fs.create("/d/f%02d" % i)
            report = fsck_ffs(crash_image(fs))
            assert not any("free inode" in e for e in report.errors), report.render()

    def test_delete_never_revives_inode(self):
        fs = make_ffs()
        fs.mkdir("/d")
        for i in range(25):
            fs.write_file("/d/f%02d" % i, b"z" * 600)
        fs.sync()
        for i in range(25):
            fs.unlink("/d/f%02d" % i)
            report = fsck_ffs(crash_image(fs))
            assert report.ok, report.render()

    def test_pristine_after_sync(self):
        fs = make_ffs()
        for op in SCRIPT:
            apply_op(fs, op)
        fs.sync()
        report = fsck_ffs(crash_image(fs))
        assert report.pristine, report.render()


class TestCrashImageIsolation:
    def test_crash_image_is_independent(self):
        fs = make_cffs()
        fs.mkdir("/d")
        fs.create("/d/x")
        image = crash_image(fs)
        fs.unlink("/d/x")
        fs.sync()
        # The snapshot still shows the file; the live device does not.
        assert fsck_cffs(image).files == 1
        assert fsck_cffs(fs.device).files == 0
