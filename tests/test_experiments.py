"""Tests for the experiment drivers (small parameters; shape checks)."""


from repro.bench import (
    ablation_cache_size,
    ablation_embed_dirsize,
    ablation_group_size,
    fig2_access_time,
    fig5_smallfile,
    fig6_smallfile_softdep,
    fig7_size_sweep,
    fig8_aging,
    table1_drives,
    table2_platform,
    table3_requests,
    table4_apps,
)


class TestStaticTables:
    def test_table1_lists_three_drives(self):
        out = table1_drives()
        assert "HP C3653" in out.text
        assert "Quantum Atlas II" in out.text
        assert "Barracuda" in out.text

    def test_table1_quotes_paper_seeks(self):
        """The seek rows quote the paper's Table 1 values."""
        text = table1_drives().text
        for value in ("8.7", "8.0", "7.9", "16.5", "19.0", "18.0"):
            assert value in text

    def test_table2_platform(self):
        out = table2_platform()
        assert "ST31200" in out.text
        assert out.data["profile"].rpm == 5400.0


class TestFig2:
    def test_flat_then_linear(self):
        """Access time is flat for small requests and grows once
        transfer dominates — the bandwidth argument."""
        out = fig2_access_time(sizes_kb=(4, 64, 1024), samples=30)
        for drive, avgs in out.data["averages_ms"].items():
            t4, t64, t1024 = avgs
            assert t64 < 3 * t4, drive       # 16x data, < 3x time
            assert t1024 > 3 * t64, drive    # eventually transfer-bound

    def test_deterministic(self):
        a = fig2_access_time(sizes_kb=(4,), samples=10)
        b = fig2_access_time(sizes_kb=(4,), samples=10)
        assert a.data["averages_ms"] == b.data["averages_ms"]


class TestSmallfileFigures:
    def test_fig5_grid_and_ordering(self):
        out = fig5_smallfile(n_files=250)
        results = out.data["results"]
        assert set(results) == {"conventional", "embedded", "grouping",
                                "cffs", "cffs-journal"}
        assert (results["cffs"]["read"].files_per_second
                > results["conventional"]["read"].files_per_second)
        # Sequential log commits beat synchronous ordering writes.
        assert (results["cffs-journal"]["create"].files_per_second
                > results["cffs"]["create"].files_per_second)

    def test_fig6_softdep_faster_creates(self):
        sync = fig5_smallfile(n_files=200, labels=("conventional",))
        soft = fig6_smallfile_softdep(n_files=200, labels=("conventional",))
        assert (soft.data["results"]["conventional"]["create"].files_per_second
                > sync.data["results"]["conventional"]["create"].files_per_second)

    def test_table3_reduction_column(self):
        out = table3_requests(n_files=250, labels=("conventional", "cffs"))
        assert "read reduction" in out.text
        conv = out.data["results"]["conventional"]["read"].requests_per_file
        cffs = out.data["results"]["cffs"]["read"].requests_per_file
        assert conv / cffs > 5


class TestFig7:
    def test_crossover_shrinks_with_size(self):
        """C-FFS's advantage is largest for the smallest files."""
        out = fig7_size_sweep(file_sizes=(1024, 32768), total_bytes=256 * 1024)
        sweeps = out.data["sweeps"]
        small_ratio = (sweeps["cffs"][0].read_mb_per_s
                       / sweeps["conventional"][0].read_mb_per_s)
        large_ratio = (sweeps["cffs"][1].read_mb_per_s
                       / sweeps["conventional"][1].read_mb_per_s)
        assert small_ratio > large_ratio
        assert small_ratio > 3.0


class TestFig8:
    def test_aging_keeps_cffs_ahead(self):
        out = fig8_aging(utilizations=(0.3,), operations=900, n_files=250)
        assert (out.data["read"]["cffs"][0]
                > 2.5 * out.data["read"]["conventional"][0])


class TestTable4:
    def test_apps_improvements_in_band(self):
        """Paper: 'performance improvements ranging from 10-300%'."""
        out = table4_apps(n_dirs=3, files_per_dir=10)
        improvements = out.data["improvements"]
        assert improvements  # at least one pass measured
        for name, imp in improvements.items():
            assert imp > -20.0, (name, imp)  # C-FFS never clearly loses
        assert max(improvements.values()) > 10.0


class TestAblations:
    def test_group_size_monotone_for_reads(self):
        out = ablation_group_size(spans=(4, 16), n_files=250)
        assert out.data["read"][1] > out.data["read"][0]

    def test_embed_dirsize_cost_visible(self):
        out = ablation_embed_dirsize(entry_counts=(64, 256))
        embedded = out.data["dir_blocks"]["embedded"]
        external = out.data["dir_blocks"]["external"]
        assert embedded[-1] > external[-1]

    def test_cache_size_hurts_nobody(self):
        out = ablation_cache_size(cache_blocks=(256, 4096), n_files=250)
        for label, series in out.data["read"].items():
            assert series[1] >= 0.8 * series[0]
