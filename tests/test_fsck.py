"""Offline checker tests: clean images stay clean, injected corruption
is detected."""



from repro.blockdev.device import BLOCK_SIZE
from repro.ffs import layout as flayout
from repro.fsck import fsck_cffs, fsck_ffs
from tests.conftest import make_cffs, make_ffs


def populated_ffs():
    fs = make_ffs()
    fs.mkdir("/d")
    fs.mkdir("/d/sub")
    for i in range(30):
        fs.write_file("/d/f%02d" % i, b"x" * (512 * (i + 1)))
    fs.write_file("/top", b"top level")
    fs.link("/top", "/top2")
    fs.sync()
    return fs


def populated_cffs(**kwargs):
    fs = make_cffs(**kwargs)
    fs.mkdir("/d")
    fs.mkdir("/d/sub")
    for i in range(30):
        fs.write_file("/d/f%02d" % i, b"x" * (512 * (i + 1)))
    fs.write_file("/big", b"B" * (BLOCK_SIZE * 16))
    fs.write_file("/top", b"top level")
    fs.link("/top", "/top2")
    fs.sync()
    return fs


class TestFfsClean:
    def test_fresh_image_clean(self):
        fs = make_ffs()
        fs.sync()
        assert fsck_ffs(fs.device).pristine

    def test_populated_image_clean(self):
        fs = populated_ffs()
        report = fsck_ffs(fs.device)
        assert report.pristine, report.render()
        assert report.files == 31  # 30 + /top (hard link counted once)
        assert report.directories == 3  # root, /d, /d/sub

    def test_clean_after_deletes(self):
        fs = populated_ffs()
        for i in range(0, 30, 2):
            fs.unlink("/d/f%02d" % i)
        fs.sync()
        assert fsck_ffs(fs.device).pristine

    def test_clean_after_renames(self):
        fs = populated_ffs()
        fs.rename("/d/f01", "/d/sub/moved")
        fs.rename("/top", "/renamed")
        fs.sync()
        report = fsck_ffs(fs.device)
        assert report.ok, report.render()


class TestFfsCorruption:
    def test_bad_magic(self):
        fs = populated_ffs()
        block = bytearray(fs.device.peek_block(0))
        block[0] ^= 0xFF
        fs.device.poke_block(0, bytes(block))
        report = fsck_ffs(fs.device)
        assert not report.ok
        assert "magic" in report.errors[0]

    def test_dangling_dirent(self):
        """A name pointing at a freed inode is detected."""
        fs = populated_ffs()
        handle = fs._resolve("/top")
        bno, slot = fs._inode_location(handle.inum)
        raw = bytearray(fs.device.peek_block(bno))
        raw[slot * flayout.INODE_SIZE:(slot + 1) * flayout.INODE_SIZE] = bytes(
            flayout.INODE_SIZE
        )
        fs.device.poke_block(bno, bytes(raw))
        report = fsck_ffs(fs.device)
        assert any("free inode" in e for e in report.errors)

    def test_wrong_nlink(self):
        fs = populated_ffs()
        handle = fs._resolve("/d/f00")
        bno, slot = fs._inode_location(handle.inum)
        raw = bytearray(fs.device.peek_block(bno))
        fields = flayout.unpack_inode(
            bytes(raw[slot * flayout.INODE_SIZE:(slot + 1) * flayout.INODE_SIZE])
        )
        repacked = flayout.pack_inode(
            fields["mode"], 5, fields["flags"], fields["gen"], fields["size"],
            fields["mtime"], fields["direct"], fields["indirect"],
            fields["dindirect"], fields["nblocks"],
        )
        raw[slot * flayout.INODE_SIZE:(slot + 1) * flayout.INODE_SIZE] = repacked
        fs.device.poke_block(bno, bytes(raw))
        report = fsck_ffs(fs.device)
        assert any("nlink" in e for e in report.errors)

    def test_bitmap_disagreement(self):
        fs = populated_ffs()
        handle = fs._resolve("/d/f05")
        data_block = handle.direct[0]
        cgi = fs.alloc.cg_of_block(data_block)
        bitmap_bno = fs.cg_base(cgi) + 1
        raw = bytearray(fs.device.peek_block(bitmap_bno))
        off = data_block - fs.cg_base(cgi)
        raw[off >> 3] &= ~(1 << (off & 7))
        fs.device.poke_block(bitmap_bno, bytes(raw))
        report = fsck_ffs(fs.device)
        assert any("free in bitmap" in r for r in report.repairs)
        assert not report.pristine


class TestCffsClean:
    def test_fresh_image_clean(self):
        fs = make_cffs()
        fs.sync()
        assert fsck_cffs(fs.device).pristine

    def test_populated_image_clean(self):
        fs = populated_cffs()
        report = fsck_cffs(fs.device)
        assert report.pristine, report.render()
        assert report.files == 32
        assert report.directories == 3

    def test_all_grid_configs_clean(self):
        for embedded in (True, False):
            for grouping in (True, False):
                fs = populated_cffs(embedded=embedded, grouping=grouping)
                report = fsck_cffs(fs.device)
                assert report.ok, (embedded, grouping, report.render())

    def test_clean_after_churn(self):
        fs = populated_cffs()
        for i in range(0, 30, 3):
            fs.unlink("/d/f%02d" % i)
        fs.rename("/d/f01", "/d/sub/x")
        fs.write_file("/d/new", b"n" * 5000)
        fs.sync()
        report = fsck_cffs(fs.device)
        assert report.ok, report.render()

    def test_inodes_found_via_hierarchy(self):
        """No static tables: the walk alone finds every file, matching
        the paper's recovery claim."""
        fs = make_cffs()
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        fs.mkdir("/a/b/c")
        fs.write_file("/a/b/c/deep", b"found me")
        fs.sync()
        report = fsck_cffs(fs.device)
        assert report.ok
        assert report.files == 1
        assert report.directories == 4


class TestCffsCorruption:
    def test_bad_magic(self):
        fs = populated_cffs()
        block = bytearray(fs.device.peek_block(0))
        block[0] ^= 0xFF
        fs.device.poke_block(0, bytes(block))
        assert not fsck_cffs(fs.device).ok

    def test_group_slot_ownership_mismatch(self):
        fs = populated_cffs()
        handle = fs._resolve("/d/f00")
        bno = handle.direct[0]
        ext = fs.groups.extent_of_block(bno)
        desc = fs.groups.read_desc(ext)
        slot = bno - fs.groups.extent_base(ext)
        desc["slots"][slot] = (999999, 0)  # wrong owner
        fs.groups.write_desc(ext, desc)
        fs.sync()
        report = fsck_cffs(fs.device)
        assert any("descriptor says" in r for r in report.repairs)
        assert not report.pristine

    def test_referenced_block_with_free_slot(self):
        fs = populated_cffs()
        handle = fs._resolve("/d/f00")
        bno = handle.direct[0]
        ext = fs.groups.extent_of_block(bno)
        desc = fs.groups.read_desc(ext)
        slot = bno - fs.groups.extent_base(ext)
        desc["valid_mask"] &= ~(1 << slot)
        fs.groups.write_desc(ext, desc)
        fs.sync()
        report = fsck_cffs(fs.device)
        assert any("slot is free" in r for r in report.repairs)
        assert not report.pristine

    def test_external_nlink_mismatch(self):
        fs = populated_cffs()
        handle = fs._resolve("/top")
        inum = handle.loc[1]
        handle.nlink = 9
        fs.ext.store(inum, handle, sync=False)
        fs.sync()
        report = fsck_cffs(fs.device)
        assert any("nlink" in e for e in report.errors)

    def test_bitmap_disagreement(self):
        fs = populated_cffs()
        handle = fs._resolve("/big")
        data_block = handle.direct[0]
        cgi = fs.alloc.cg_of_block(data_block)
        bitmap_bno = fs.cg_base(cgi) + 1
        raw = bytearray(fs.device.peek_block(bitmap_bno))
        off = data_block - fs.cg_base(cgi)
        raw[off >> 3] &= ~(1 << (off & 7))
        fs.device.poke_block(bitmap_bno, bytes(raw))
        report = fsck_cffs(fs.device)
        assert any("free in bitmap" in r for r in report.repairs)
        assert not report.pristine


# ---------------------------------------------------------------------------
# Repair mode: every detected corruption must round-trip — repair it,
# and the second check comes back pristine.
# ---------------------------------------------------------------------------

from repro.core import layout as clayout  # noqa: E402
from repro.core.filesystem import CFFS  # noqa: E402
from repro.ffs import directory as fdir  # noqa: E402
from repro.ffs.filesystem import FFS  # noqa: E402


def repair_roundtrip(check, device):
    """Repair, then re-check; returns (first report, second report)."""
    first = check(device, repair=True)
    second = check(device)
    assert second.pristine, "not pristine after repair:\n" + second.render()
    return first, second


class TestFfsRepair:
    def test_repair_on_pristine_image_is_noop(self):
        fs = populated_ffs()
        report = fsck_ffs(fs.device, repair=True)
        assert report.pristine
        assert report.fixed == []
        assert fsck_ffs(fs.device).pristine

    def test_smashed_superblock_restored_from_replica(self):
        fs = populated_ffs()
        fs.device.poke_block(0, bytes(BLOCK_SIZE))
        assert not fsck_ffs(fs.device).ok
        first, _ = repair_roundtrip(fsck_ffs, fs.device)
        assert any("replica" in f for f in first.fixed)
        remounted = FFS.mount(fs.device)
        assert remounted.read_file("/top") == b"top level"

    def test_dangling_dirent_repaired(self):
        fs = populated_ffs()
        handle = fs._resolve("/top")
        bno, slot = fs._inode_location(handle.inum)
        raw = bytearray(fs.device.peek_block(bno))
        raw[slot * flayout.INODE_SIZE:(slot + 1) * flayout.INODE_SIZE] = bytes(
            flayout.INODE_SIZE
        )
        fs.device.poke_block(bno, bytes(raw))
        first, second = repair_roundtrip(fsck_ffs, fs.device)
        assert any("free inode" in f or "removed" in f for f in first.fixed)
        assert second.files == 30  # /top and /top2 both gone

    def test_wrong_nlink_repaired(self):
        fs = populated_ffs()
        handle = fs._resolve("/d/f00")
        bno, slot = fs._inode_location(handle.inum)
        raw = bytearray(fs.device.peek_block(bno))
        fields = flayout.unpack_inode(
            bytes(raw[slot * flayout.INODE_SIZE:(slot + 1) * flayout.INODE_SIZE])
        )
        raw[slot * flayout.INODE_SIZE:(slot + 1) * flayout.INODE_SIZE] = (
            flayout.pack_inode(
                fields["mode"], 5, fields["flags"], fields["gen"],
                fields["size"], fields["mtime"], fields["direct"],
                fields["indirect"], fields["dindirect"], fields["nblocks"],
            ))
        fs.device.poke_block(bno, bytes(raw))
        first, _ = repair_roundtrip(fsck_ffs, fs.device)
        assert any("nlink" in f for f in first.fixed)
        assert FFS.mount(fs.device).read_file("/d/f00") == b"x" * 512

    def test_bitmap_disagreement_repaired(self):
        fs = populated_ffs()
        handle = fs._resolve("/d/f05")
        data_block = handle.direct[0]
        cgi = fs.alloc.cg_of_block(data_block)
        bitmap_bno = fs.cg_base(cgi) + 1
        raw = bytearray(fs.device.peek_block(bitmap_bno))
        off = data_block - fs.cg_base(cgi)
        raw[off >> 3] &= ~(1 << (off & 7))
        fs.device.poke_block(bitmap_bno, bytes(raw))
        first, _ = repair_roundtrip(fsck_ffs, fs.device)
        assert any("bitmap" in f for f in first.fixed)

    def test_orphan_inode_collected(self):
        fs = populated_ffs()
        d = fs._resolve("/d")
        raw = bytearray(fs.device.peek_block(d.direct[0]))
        assert fdir.remove_entry(raw, "f00") is not None
        fs.device.poke_block(d.direct[0], bytes(raw))
        before = fsck_ffs(fs.device)
        assert any("orphan" in w for w in before.warnings)
        first, second = repair_roundtrip(fsck_ffs, fs.device)
        assert any("orphan" in f or "unreachable" in f for f in first.fixed)
        assert second.files == 30
        assert second.warnings == []


class TestCffsRepair:
    def test_repair_on_pristine_image_is_noop(self):
        fs = populated_cffs()
        report = fsck_cffs(fs.device, repair=True)
        assert report.pristine
        assert report.fixed == []
        assert fsck_cffs(fs.device).pristine

    def test_smashed_superblock_restored_from_replica(self):
        fs = populated_cffs()
        fs.device.poke_block(0, bytes(BLOCK_SIZE))
        assert not fsck_cffs(fs.device).ok
        first, _ = repair_roundtrip(fsck_cffs, fs.device)
        assert any("replica" in f for f in first.fixed)
        remounted = CFFS.mount(fs.device)
        assert remounted.read_file("/top") == b"top level"

    def test_group_slot_ownership_repaired(self):
        fs = populated_cffs()
        handle = fs._resolve("/d/f00")
        bno = handle.direct[0]
        ext = fs.groups.extent_of_block(bno)
        desc = fs.groups.read_desc(ext)
        desc["slots"][bno - fs.groups.extent_base(ext)] = (999999, 0)
        fs.groups.write_desc(ext, desc)
        fs.sync()
        first, _ = repair_roundtrip(fsck_cffs, fs.device)
        assert any("descriptor rebuilt" in f for f in first.fixed)

    def test_referenced_block_with_free_slot_repaired(self):
        fs = populated_cffs()
        handle = fs._resolve("/d/f00")
        bno = handle.direct[0]
        ext = fs.groups.extent_of_block(bno)
        desc = fs.groups.read_desc(ext)
        desc["valid_mask"] &= ~(1 << (bno - fs.groups.extent_base(ext)))
        fs.groups.write_desc(ext, desc)
        fs.sync()
        repair_roundtrip(fsck_cffs, fs.device)

    def test_external_nlink_repaired(self):
        fs = populated_cffs()
        handle = fs._resolve("/top")
        inum = handle.loc[1]
        handle.nlink = 9
        fs.ext.store(inum, handle, sync=False)
        fs.sync()
        first, _ = repair_roundtrip(fsck_cffs, fs.device)
        assert any("nlink" in f for f in first.fixed)
        assert CFFS.mount(fs.device).read_file("/top2") == b"top level"

    def test_bitmap_disagreement_repaired(self):
        fs = populated_cffs()
        handle = fs._resolve("/big")
        data_block = handle.direct[0]
        cgi = fs.alloc.cg_of_block(data_block)
        bitmap_bno = fs.cg_base(cgi) + 1
        raw = bytearray(fs.device.peek_block(bitmap_bno))
        off = data_block - fs.cg_base(cgi)
        raw[off >> 3] &= ~(1 << (off & 7))
        fs.device.poke_block(bitmap_bno, bytes(raw))
        first, _ = repair_roundtrip(fsck_cffs, fs.device)
        assert any("bitmap" in f for f in first.fixed)

    def test_stale_next_fileid_repaired(self):
        fs = populated_cffs()
        raw = fs.device.peek_block(0)
        sb = clayout.unpack_superblock(raw)
        sb["next_fileid"] = 3
        fs.device.poke_block(
            0, clayout.pack_superblock(sb, clayout.root_inode_bytes(raw)))
        before = fsck_cffs(fs.device)
        assert any("next_fileid" in r for r in before.repairs)
        first, _ = repair_roundtrip(fsck_cffs, fs.device)
        assert any("superblock counters" in f for f in first.fixed)

    def test_repair_all_grid_configs(self):
        for embedded in (True, False):
            for grouping in (True, False):
                fs = populated_cffs(embedded=embedded, grouping=grouping)
                fs.device.poke_block(0, bytes(BLOCK_SIZE))
                first = fsck_cffs(fs.device, repair=True)
                assert first.fixed, (embedded, grouping)
                second = fsck_cffs(fs.device)
                assert second.pristine, (embedded, grouping, second.render())
