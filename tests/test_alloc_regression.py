"""Allocation-regression tests for the production-shaped hot paths.

The perf overhaul's allocation claims, pinned with tracemalloc: with
no tracer installed (the NULL_SPAN disabled-observability path) the
cache hit loop and the vfs read path retain *no objects per block* —
net retained allocations inside ``src/repro`` stay under one small
fixed budget no matter how many blocks the loop touches.  A regression
here means some layer started keeping per-op state (or started taking
the kwargs-building observability path with observability off).

tracemalloc tracks live objects, so transient per-call garbage (the
returned read bytes, unpacked tuples) does not count — exactly the
contract: steady-state loops must not *accumulate*.
"""

from __future__ import annotations

import gc
import os
import tracemalloc

from repro import obs
from repro.blockdev.device import BLOCK_SIZE
from repro.cache.buffercache import BufferCache
from tests.conftest import make_cffs, make_device

#: Net retained allocations allowed inside src/repro for a whole
#: measured loop (thousands of block touches).  Small and fixed: one
#: retained object per block would exceed it 100x over.
BUDGET_OBJECTS = 32

_REPRO_ONLY = [
    tracemalloc.Filter(True, "*" + os.sep + "repro" + os.sep + "*"),
]


def _retained_in_repro(fn) -> int:
    """Net live-object growth attributed to repro source files."""
    fn()  # warmup: lazy tables, struct caches, interned state
    gc.collect()
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        fn()
        gc.collect()
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    before = before.filter_traces(_REPRO_ONLY)
    after = after.filter_traces(_REPRO_ONLY)
    return sum(s.count_diff for s in after.compare_to(before, "filename"))


def test_cache_hit_loop_allocates_nothing_per_block():
    """4096 cache hits retain ~nothing: the per-block path is clean."""
    assert not obs.enabled()
    cache = BufferCache(make_device(), capacity_blocks=64)
    bnos = list(range(1, 17))
    for bno in bnos:  # populate (misses, device reads)
        cache.get(bno)

    def hot_loop():
        get = cache.get
        for _ in range(256):
            for bno in bnos:  # 16 x 256 = 4096 hits
                get(bno)

    assert _retained_in_repro(hot_loop) <= BUDGET_OBJECTS


def test_disabled_observability_read_path_allocates_nothing_per_block():
    """With no tracer, vfs pread over warm blocks retains ~nothing.

    This is the NULL_SPAN path: every span site the overhaul guarded
    with ``obs.enabled()`` must skip kwargs building entirely, and the
    copy-free read pipeline must not accumulate buffers.
    """
    assert not obs.enabled()
    fs = make_cffs()
    n_blocks = 8
    fs.write_file("/hot", bytes(range(256)) * (n_blocks * BLOCK_SIZE // 256))
    fs.sync()
    fd = fs.open("/hot")
    try:
        def hot_loop():
            pread = fs.pread
            for _ in range(128):
                for idx in range(n_blocks):  # 8 x 128 = 1024 block reads
                    pread(fd, idx * BLOCK_SIZE, BLOCK_SIZE)

        assert _retained_in_repro(hot_loop) <= BUDGET_OBJECTS
    finally:
        fs.close(fd)


def test_budget_is_per_loop_not_per_block():
    """Doubling the block count must not move the retained count.

    This is the actual regression shape: a per-block leak scales with
    the loop; the honest fixed overhead (counter ints, clock floats)
    does not.
    """
    assert not obs.enabled()
    cache = BufferCache(make_device(), capacity_blocks=64)
    for bno in range(1, 33):
        cache.get(bno)

    def loop(n):
        def run():
            get = cache.get
            for _ in range(64):
                for bno in range(1, n + 1):
                    get(bno)
        return run

    small = _retained_in_repro(loop(16))
    large = _retained_in_repro(loop(32))
    assert small <= BUDGET_OBJECTS and large <= BUDGET_OBJECTS
    # No per-block term: twice the blocks, same (tiny) retention.
    assert abs(large - small) <= BUDGET_OBJECTS


def test_span_names_are_interned_not_rebuilt():
    """Reading ``span.name`` must not allocate a fresh string per read.

    Span names draw from a small fixed (layer, op) vocabulary, so every
    read of a given name must return the *same interned object* — and a
    whole loop of name reads across many spans must retain nothing
    beyond the one-time cache fill (warmed up before measuring).
    """
    from repro.obs.tracer import Tracer

    tracer = Tracer()
    layers_ops = [("vfs", "create"), ("cache", "flush"), ("disk", "read"),
                  ("fs", "lookup")]
    spans = [tracer.span(layer, op) for layer, op in layers_ops for _ in range(4)]

    # Identity, not mere equality: one object per distinct (layer, op).
    for i, span in enumerate(spans):
        assert span.name is spans[(i // 4) * 4].name
        assert span.name == "%s.%s" % (span.layer, span.op)

    def hot_loop():
        for _ in range(1024):
            for span in spans:  # 16 x 1024 name reads
                span.name

    assert _retained_in_repro(hot_loop) <= BUDGET_OBJECTS
