"""Property tests for the bit-level fast paths the perf PR introduced.

The CRC32C wide-table implementation (:func:`repro.resilience.crc32c`)
consumes eight input bytes per step through four 65536-entry tables; it
must agree with the retained slicing-by-8 oracle
(:func:`crc32c_reference`) for every length and alignment, because the
resilience layer trusts it for torn-write detection.  The bitmap scan
(:func:`repro.ffs.cylgroup.find_clear_bit`) must agree with a
bit-by-bit probe for every (bitmap, start, end), because the allocator
trusts it to pick the *same* block the probe loop would have picked —
that is what keeps disk images byte-identical.
"""

from __future__ import annotations

import random

from repro.ffs.cylgroup import bit_is_set, find_clear_bit
from repro.resilience.checksums import crc32c, crc32c_reference


class TestCrcFastPath:
    def test_standard_check_value(self):
        # The CRC32C check value from RFC 3720 / the iSCSI test vector.
        assert crc32c(b"123456789") == 0xE3069283
        assert crc32c_reference(b"123456789") == 0xE3069283

    def test_all_lengths_0_to_4097(self):
        """Fast path == oracle on every length spanning a 4 KB block.

        One seeded random buffer, checked at every prefix length: this
        covers the empty buffer, every word-loop/byte-tail split, the
        exact-block struct path (4096), and one length past it.
        """
        rng = random.Random(0xC4C)
        buf = bytes(rng.getrandbits(8) for _ in range(4098))
        for length in range(4098):
            prefix = buf[:length]
            assert crc32c(prefix) == crc32c_reference(prefix), (
                "fast path diverged from slicing-by-8 at length %d" % length)

    def test_chained_crc_matches_one_shot(self):
        """Continuing from a previous CRC equals checksumming the whole."""
        rng = random.Random(1997)
        data = bytes(rng.getrandbits(8) for _ in range(4096))
        whole = crc32c_reference(data)
        for split in (0, 1, 7, 8, 9, 511, 512, 2048, 4095, 4096):
            assert crc32c(data[split:], crc32c(data[:split])) == whole
        # Nonzero initial crc on both implementations.
        for seed_crc in (1, 0xDEADBEEF, 0xFFFFFFFF):
            assert crc32c(data, seed_crc) == crc32c_reference(data, seed_crc)

    def test_zero_block_fast_path(self):
        """The memcmp-speed zero-block shortcut returns the real CRC."""
        zero = bytes(4096)
        assert crc32c(zero) == crc32c_reference(zero)
        # The shortcut only applies at crc == 0; chained calls take the
        # table path and must still be right.
        assert crc32c(zero, 123) == crc32c_reference(zero, 123)
        # A single set bit anywhere must defeat the shortcut.
        for pos in (0, 1, 2047, 4095):
            block = bytearray(4096)
            block[pos] = 1
            assert crc32c(bytes(block)) == crc32c_reference(bytes(block))
            assert crc32c(bytes(block)) != crc32c(zero)

    def test_accepts_bytearray(self):
        """Cache buffers are bytearrays; both paths must accept them."""
        rng = random.Random(7)
        for length in (0, 5, 64, 4096):
            ba = bytearray(rng.getrandbits(8) for _ in range(length))
            assert crc32c(ba) == crc32c_reference(bytes(ba))


def _probe_clear_bit(bitmap, start, end):
    """The replaced implementation: probe each offset in order."""
    for offset in range(start, end):
        if not bit_is_set(bitmap, offset):
            return offset
    return None


class TestFindClearBit:
    def test_matches_probe_loop_on_random_bitmaps(self):
        rng = random.Random(0xB17)
        for _ in range(400):
            nbits = rng.randrange(8, 257)
            nbytes = (nbits + 7) // 8
            # Mostly-full bitmaps: the shape the byte-skip targets.
            bitmap = bytearray(
                0xFF if rng.random() < 0.7 else rng.getrandbits(8)
                for _ in range(nbytes))
            start = rng.randrange(0, nbits)
            end = rng.randrange(start, nbits + 1)
            assert find_clear_bit(bitmap, start, end) == \
                _probe_clear_bit(bitmap, start, end)

    def test_edges(self):
        full = bytearray(b"\xff" * 8)
        assert find_clear_bit(full, 0, 64) is None
        assert find_clear_bit(full, 5, 5) is None  # empty range
        empty = bytearray(8)
        assert find_clear_bit(empty, 0, 64) == 0
        assert find_clear_bit(empty, 63, 64) == 63
        # First clear bit sits exactly on / just past the end bound.
        bm = bytearray(b"\xff" * 8)
        bm[4] = 0xFE  # bit 33 onward set, bit 32 clear
        assert find_clear_bit(bm, 0, 33) == 32
        assert find_clear_bit(bm, 0, 32) is None
        assert find_clear_bit(bm, 33, 64) is None
