"""Tests for fsync and the rename cycle guard."""

import pytest

from repro.errors import InvalidArgument
from tests.conftest import make_cffs


class TestRenameCycleGuard:
    def test_rename_into_own_subtree_rejected(self, anyfs):
        anyfs.mkdir("/a")
        anyfs.mkdir("/a/b")
        with pytest.raises(InvalidArgument):
            anyfs.rename("/a", "/a/b/c")

    def test_rename_onto_own_child_name_rejected(self, anyfs):
        anyfs.mkdir("/a")
        with pytest.raises(InvalidArgument):
            anyfs.rename("/a", "/a/a")

    def test_sibling_with_prefix_name_ok(self, anyfs):
        """'/ab' is not inside '/a' — prefix check is per component."""
        anyfs.mkdir("/a")
        anyfs.mkdir("/ab")
        anyfs.rename("/a", "/ab/a")
        assert anyfs.exists("/ab/a")

    def test_rename_up_the_tree_ok(self, anyfs):
        anyfs.mkdir("/a")
        anyfs.mkdir("/a/b")
        anyfs.rename("/a/b", "/b")
        assert anyfs.exists("/b")


class TestFsync:
    def test_fsync_writes_dirty_data(self, anyfs):
        fd = anyfs.open("/f", create=True)
        anyfs.pwrite(fd, 0, b"durable" * 100)
        nreq = anyfs.fsync(fd)
        anyfs.close(fd)
        assert nreq >= 1
        # The data is now on the device even though no sync() ran.
        handle = anyfs._resolve("/f")
        bno = handle.direct[0]
        assert anyfs.device.peek_block(bno)[:7] == b"durable"

    def test_fsync_clean_file_writes_nothing(self, anyfs):
        anyfs.write_file("/f", b"x" * 100)
        anyfs.sync()
        fd = anyfs.open("/f")
        assert anyfs.fsync(fd) == 0
        anyfs.close(fd)

    def test_fsync_batches_grouped_blocks(self):
        fs = make_cffs()
        fs.mkdir("/d")
        fd = fs.open("/d/f", create=True)
        fs.pwrite(fd, 0, b"g" * (4 * 4096))
        before = fs.device.disk.stats.snapshot()
        fs.fsync(fd)
        fs.close(fd)
        delta = fs.device.disk.stats.delta(before)
        # The four adjacent grouped data blocks coalesce into one
        # 32-sector request; the rest is the metadata chain.
        assert delta.request_sizes.get(32) == 1
        assert delta.writes <= 4  # data + dir block + root block + sb

    def test_fsync_other_files_stay_dirty(self, anyfs):
        anyfs.write_file("/other", b"o" * 5000)
        fd = anyfs.open("/f", create=True)
        anyfs.pwrite(fd, 0, b"f" * 100)
        anyfs.fsync(fd)
        anyfs.close(fd)
        assert anyfs.cache.dirty_count > 0  # /other's blocks still dirty

    def test_fsync_then_crash_is_durable(self):
        from repro.blockdev.device import BlockDevice
        from repro.cache.policy import MetadataPolicy
        from tests.conftest import TEST_PROFILE

        fs = make_cffs(policy=MetadataPolicy.DELAYED_METADATA)
        fs.mkdir("/d")
        fs.sync()
        fd = fs.open("/d/precious", create=True)
        fs.pwrite(fd, 0, b"must survive")
        fs.fsync(fd)
        fs.close(fd)
        # Crash: only media state survives.
        image = BlockDevice(TEST_PROFILE)
        for bno, data in fs.device._blocks.items():
            image.poke_block(bno, data)
        from repro.core.filesystem import CFFS

        survivor = CFFS.mount(image, fs.config)
        assert survivor.read_file("/d/precious") == b"must survive"
