"""Edge cases for the request-ordering helpers in blockdev/scheduler.

The happy paths are covered by test_blockdev.py; these pin the corners
the disk queue depends on: empty inputs, duplicates, run-cap
boundaries, and head positions outside the outstanding address range.
"""

import pytest

from repro.blockdev.scheduler import (
    clook_next,
    clook_order,
    coalesce_blocks,
    sstf_next,
)


class TestClookOrderEdges:
    def test_empty_input(self):
        assert clook_order([], head_position=100) == []

    def test_single_block(self):
        assert clook_order([7], head_position=0) == [7]
        assert clook_order([7], head_position=99) == [7]

    def test_duplicates_collapse(self):
        assert clook_order([4, 4, 2, 4, 2], head_position=3) == [4, 2]

    def test_head_beyond_all_blocks_wraps_ascending(self):
        # Nothing at or past the head: the sweep is entirely the wrap.
        assert clook_order([9, 5, 7], head_position=50) == [5, 7, 9]

    def test_head_below_all_blocks_no_wrap(self):
        assert clook_order([9, 5, 7], head_position=0) == [5, 7, 9]

    def test_head_exactly_on_a_block(self):
        # "At or beyond" includes the head position itself.
        assert clook_order([5, 3, 8], head_position=5) == [5, 8, 3]


class TestCoalesceEdges:
    def test_empty_input(self):
        assert coalesce_blocks([]) == []

    def test_single_block(self):
        assert coalesce_blocks([3]) == [(3, 1)]

    def test_cap_boundary_exact(self):
        # A run of exactly max_blocks stays one extent...
        assert coalesce_blocks(list(range(8)), max_blocks=8) == [(0, 8)]
        # ...one more block starts a second extent.
        assert coalesce_blocks(list(range(9)), max_blocks=8) == [(0, 8), (8, 1)]

    def test_cap_of_one_splits_everything(self):
        assert coalesce_blocks([1, 2, 3], max_blocks=1) == [(1, 1), (2, 1), (3, 1)]

    def test_duplicate_blocks_do_not_extend_a_run(self):
        # Callers pass deduplicated lists; a repeat is its own extent,
        # never silently merged into the running one.
        assert coalesce_blocks([4, 4]) == [(4, 1), (4, 1)]

    def test_descending_input_preserved_run_by_run(self):
        assert coalesce_blocks([9, 8, 7]) == [(9, 1), (8, 1), (7, 1)]


class TestQueueSelection:
    def test_sstf_empty_raises(self):
        with pytest.raises(ValueError):
            sstf_next([], head_position=0)

    def test_clook_empty_raises(self):
        with pytest.raises(ValueError):
            clook_next([], head_position=0)

    def test_sstf_picks_closest_either_side(self):
        assert sstf_next([100, 40, 55], head_position=50) == 2
        assert sstf_next([100, 48, 55], head_position=50) == 1

    def test_sstf_tie_goes_to_earliest_submitted(self):
        # 45 and 55 are equidistant from 50; index 0 wins.
        assert sstf_next([55, 45], head_position=50) == 0
        assert sstf_next([45, 55], head_position=50) == 0

    def test_sstf_duplicates_pick_first(self):
        assert sstf_next([60, 60, 60], head_position=50) == 0

    def test_clook_prefers_lowest_at_or_beyond_head(self):
        assert clook_next([90, 55, 10], head_position=50) == 1

    def test_clook_head_beyond_all_wraps_to_lowest(self):
        assert clook_next([90, 55, 10], head_position=95) == 2

    def test_clook_head_exactly_on_address(self):
        assert clook_next([90, 50, 10], head_position=50) == 1

    def test_clook_duplicate_addresses_pick_first(self):
        assert clook_next([70, 70], head_position=50) == 0
        assert clook_next([30, 30], head_position=50) == 0
