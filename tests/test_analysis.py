"""Tests for the measurement and reporting helpers."""

import pytest

from repro.analysis import Table, bar_chart, format_series, percent_improvement, speedup
from repro.disk.stats import DiskStats


class TestMetrics:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_speedup_rejects_zero(self):
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)

    def test_percent_improvement(self):
        assert percent_improvement(3.5, 1.0) == pytest.approx(250.0)
        assert percent_improvement(1.1, 1.0) == pytest.approx(10.0, abs=0.5)


class TestTable:
    def test_render_contains_everything(self):
        table = Table("My Title", ["a", "bb"])
        table.add_row("x", 1.5)
        table.add_row("yy", 2)
        out = table.render()
        assert "My Title" in out
        assert "bb" in out
        assert "1.5" in out
        assert "yy" in out

    def test_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_caption(self):
        table = Table("t", ["a"])
        table.add_row("v")
        table.caption = "the caption"
        assert "the caption" in table.render()

    def test_column_alignment(self):
        table = Table("t", ["col"])
        table.add_row("very-long-cell-value")
        lines = table.render().splitlines()
        header = [l for l in lines if l.startswith("col")][0]
        assert len(header) >= len("very-long-cell-value")


class TestCharts:
    def test_bar_chart_scales(self):
        out = bar_chart("chart", [("a", 10.0), ("b", 5.0)])
        lines = out.splitlines()
        bar_a = [l for l in lines if l.startswith("a")][0]
        bar_b = [l for l in lines if l.startswith("b")][0]
        assert bar_a.count("#") > bar_b.count("#")

    def test_bar_chart_empty(self):
        assert "no data" in bar_chart("c", [])

    def test_format_series(self):
        out = format_series("fig", "x", [1, 2], [("s1", [10.0, 20.0]),
                                                 ("s2", [1.0, 2.0])], unit="ms")
        assert "s1" in out and "s2" in out and "ms" in out


class TestDiskStats:
    def test_delta(self):
        stats = DiskStats()
        stats.record_request(False, 8)
        snap = stats.snapshot()
        stats.record_request(True, 16)
        stats.record_request(False, 8)
        delta = stats.delta(snap)
        assert delta.reads == 1
        assert delta.writes == 1
        assert delta.sectors_written == 16
        assert delta.request_sizes == {8: 1, 16: 1}

    def test_totals(self):
        stats = DiskStats()
        stats.record_request(False, 8)
        stats.record_request(True, 8)
        assert stats.total_requests == 2
        assert stats.bytes_read == 8 * 512

    def test_snapshot_independent(self):
        stats = DiskStats()
        snap = stats.snapshot()
        stats.record_request(False, 8)
        assert snap.reads == 0

    def test_mechanical_time(self):
        stats = DiskStats()
        stats.seek_time = 1.0
        stats.rotation_time = 2.0
        stats.transfer_time = 3.0
        assert stats.mechanical_time == 6.0


class TestLatencyMetrics:
    def test_percentile_interpolates(self):
        from repro.analysis import percentile

        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0.0) == 10.0
        assert percentile(values, 100.0) == 40.0
        assert percentile(values, 50.0) == pytest.approx(25.0)
        assert percentile([7.0], 99.0) == 7.0

    def test_percentile_order_independent(self):
        from repro.analysis import percentile

        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_percentile_rejects_bad_input(self):
        from repro.analysis import percentile

        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_summary_fields(self):
        from repro.analysis import summarize_latencies

        values = [float(i) for i in range(1, 101)]
        summary = summarize_latencies(values)
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == pytest.approx(50.5)
        assert summary.p99 == pytest.approx(99.01)
        assert summary.maximum == 100.0
        assert "p99" in summary.render()

    def test_jain_fairness(self):
        from repro.analysis import jain_fairness

        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
        assert jain_fairness([0.0, 0.0]) == 1.0
        with pytest.raises(ValueError):
            jain_fairness([])
        with pytest.raises(ValueError):
            jain_fairness([-1.0, 2.0])
