"""The permanent gate: reprolint runs clean over its own source tree.

Any new violation must either be fixed or carry an explanatory
suppression comment; this test is what CI and local pytest enforce.
The flow-sensitive rules (B001/J001/O001) hold the same bar under
``--flow``, and the committed golden baseline
(tests/golden/lint_flow_baseline.json) pins the full JSON report so a
CI diff shows exactly which finding or suppression moved.
"""

import json
import os
import subprocess
import sys

from repro.lint import lint_paths
from repro.lint.reporters import render_json

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src", "repro")
FLOW_BASELINE = os.path.join(
    REPO_ROOT, "tests", "golden", "lint_flow_baseline.json")


def test_src_tree_has_no_unsuppressed_findings():
    result = lint_paths([SRC])
    assert result.files_checked > 50  # the walk found the real tree
    offenders = [
        "%s:%d: %s %s" % (f.path, f.line, f.rule, f.message)
        for f in result.unsuppressed
    ]
    assert not offenders, "unsuppressed lint findings:\n" + "\n".join(offenders)


def test_src_tree_is_flow_clean():
    # The tentpole gate: zero unsuppressed B001/J001/O001 findings.
    result = lint_paths([SRC], flow=True)
    offenders = [
        "%s:%d: %s %s" % (f.path, f.line, f.rule, f.message)
        for f in result.unsuppressed
    ]
    assert not offenders, "unsuppressed flow findings:\n" + "\n".join(offenders)
    assert {"B001", "J001", "O001"} <= set(result.rules_run)


def test_flow_report_matches_committed_baseline():
    # Regenerate with:
    #   PYTHONPATH=src python -m repro lint src --flow --format json \
    #       > tests/golden/lint_flow_baseline.json
    # (run from the repo root, then review the diff before committing).
    result = lint_paths([SRC], flow=True)
    current = json.loads(render_json(result))
    with open(FLOW_BASELINE, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    # Paths in the committed baseline are repo-relative; normalise ours.
    for finding in current["findings"]:
        finding["path"] = os.path.relpath(finding["path"], REPO_ROOT)
    assert current == baseline


def test_suppressions_are_finite_and_audited():
    # Suppressions are a budget, not a loophole: if this number climbs,
    # justify each new entry here and in the suppressing comment.
    # Current budget: 13 PR-3/PR-5-era suppressions, +1 for the second
    # (else-arm) read_extent of the guarded group_fetch span, +2 D001
    # fixture strings, +3 J001 conditional-mutation codec calls.
    result = lint_paths([SRC], flow=True)
    assert len(result.suppressed) <= 19
    # And every one of them carries a rationale (S001 self-host).
    assert "S001" not in {f.rule for f in result.findings if not f.suppressed}


def test_cli_lint_exits_zero_on_clean_tree():
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", SRC],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


def test_cli_lint_flow_exits_zero_on_clean_tree():
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", SRC, "--flow"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout
    assert "9 rule(s)" in proc.stdout


def test_cli_lint_exits_nonzero_on_violation(tmp_path):
    bad = tmp_path / "src" / "repro" / "ffs" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("from repro.disk.drive import Drive\n")
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(bad), "--format", "json"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1
    assert '"ok": false' in proc.stdout
