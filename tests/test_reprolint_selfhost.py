"""The permanent gate: reprolint runs clean over its own source tree.

Any new violation must either be fixed or carry an explanatory
suppression comment; this test is what CI and local pytest enforce.
"""

import os
import subprocess
import sys

from repro.lint import lint_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src", "repro")


def test_src_tree_has_no_unsuppressed_findings():
    result = lint_paths([SRC])
    assert result.files_checked > 50  # the walk found the real tree
    offenders = [
        "%s:%d: %s %s" % (f.path, f.line, f.rule, f.message)
        for f in result.unsuppressed
    ]
    assert not offenders, "unsuppressed lint findings:\n" + "\n".join(offenders)


def test_suppressions_are_finite_and_audited():
    # Suppressions are a budget, not a loophole: if this number climbs,
    # justify each new entry here and in the suppressing comment.
    result = lint_paths([SRC])
    assert len(result.suppressed) <= 15


def test_cli_lint_exits_zero_on_clean_tree():
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", SRC],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


def test_cli_lint_exits_nonzero_on_violation(tmp_path):
    bad = tmp_path / "src" / "repro" / "ffs" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("from repro.disk.drive import Drive\n")
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(bad), "--format", "json"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1
    assert '"ok": false' in proc.stdout
