"""Tests for C-FFS on-disk structures: embedded-inode directory blocks,
group descriptors, and the superblock."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockdev.device import BLOCK_SIZE
from repro.core import directory as dirfmt
from repro.core import layout
from repro.core.inode import CNode
from repro.errors import InvalidArgument, NameTooLong

names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126, exclude_characters="/"),
    min_size=1,
    max_size=20,
)


def embedded_payload(fileid: int = 7) -> bytes:
    node = CNode(fileid)
    node.init_as(layout.MODE_FILE, gen=1, mtime=0.5)
    return node.pack()


class TestCInode:
    def test_roundtrip(self):
        node = CNode(99)
        node.init_as(layout.MODE_FILE, gen=3, mtime=2.5)
        node.size = 4242
        node.direct[3] = 1000
        back = CNode.unpack(node.pack())
        assert back.fileid == 99
        assert back.size == 4242
        assert back.direct[3] == 1000
        assert back.mtime == 2.5

    def test_packed_size(self):
        assert len(embedded_payload()) == layout.CINODE_SIZE

    def test_large_flag(self):
        node = CNode(1)
        node.init_as(layout.MODE_FILE, 1, 0.0)
        assert not node.is_large
        node.mark_large()
        assert CNode.unpack(node.pack()).is_large


class TestGroupDescriptor:
    def test_roundtrip(self):
        slots = [(i * 100, i) for i in range(layout.GROUP_SPAN)]
        packed = layout.pack_gdesc(layout.EXT_GROUPED, 0xBEEF, 424242, slots)
        assert len(packed) == layout.GDESC_SIZE
        fields = layout.unpack_gdesc(packed)
        assert fields["state"] == layout.EXT_GROUPED
        assert fields["valid_mask"] == 0xBEEF
        assert fields["owner"] == 424242
        assert fields["slots"] == slots

    def test_zeroed_is_free(self):
        fields = layout.unpack_gdesc(bytes(layout.GDESC_SIZE))
        assert fields["state"] == layout.EXT_FREE
        assert fields["valid_mask"] == 0

    def test_wrong_slot_count_rejected(self):
        with pytest.raises(ValueError):
            layout.pack_gdesc(0, 0, 0, [(0, 0)] * 3)


class TestCffsSuperblock:
    def test_roundtrip(self):
        sb = {
            "magic": layout.CFFS_MAGIC, "version": 1, "total_blocks": 3000,
            "n_cgs": 5, "blocks_per_cg": 512, "gdt_blocks": 2,
            "data_start": 4, "group_span": 16,
            "config_flags": layout.SBF_EMBEDDED_INODES | layout.SBF_EXPLICIT_GROUPING,
            "next_fileid": 100,
            "next_gen": 9, "free_blocks": 2000, "ext_size": 8192,
            "ext_direct": list(range(12)), "ext_indirect": 77, "ext_dindirect": 0,
            "journal_start": 2561, "journal_blocks": 64,
        }
        root = embedded_payload(1)
        packed = layout.pack_superblock(sb, root)
        assert len(packed) == BLOCK_SIZE
        assert layout.unpack_superblock(packed) == sb
        assert layout.root_inode_bytes(packed) == root


class TestEmbeddedDirents:
    def test_fresh_block_empty(self):
        block = dirfmt.init_dir_block()
        assert dirfmt.live_entries(bytes(block)) == []

    def test_add_embedded_and_find(self):
        block = dirfmt.init_dir_block()
        payload = embedded_payload(55)
        off = dirfmt.add_entry(block, 0, "file.txt", dirfmt.ET_EMBEDDED,
                               dirfmt.DK_FILE, payload)
        assert off is not None
        found = dirfmt.find_entry(bytes(block), "file.txt")
        assert found is not None
        sector, entry = found
        assert sector == 0
        _o, _r, etype, kind, name, payload_off = entry
        assert etype == dirfmt.ET_EMBEDDED
        assert bytes(block[payload_off:payload_off + layout.CINODE_SIZE]) == payload

    def test_entry_never_crosses_sector(self):
        """The integrity property: every entry (name + inode) fits in
        one 512-byte sector."""
        block = dirfmt.init_dir_block()
        i = 0
        while True:
            off = dirfmt.add_entry(
                block, i % 8, "n%05d" % i, dirfmt.ET_EMBEDDED,
                dirfmt.DK_FILE, embedded_payload(i + 1),
            )
            if off is None:
                break
            i += 1
        for sector, entry in dirfmt.live_entries(bytes(block)):
            entry_off, reclen, _e, _k, _n, _p = entry
            assert entry_off // layout.SECTOR_SIZE == sector
            assert (entry_off + reclen - 1) // layout.SECTOR_SIZE == sector

    def test_sector_capacity(self):
        """~4 embedded entries fit per sector (96B inode + short name)."""
        block = dirfmt.init_dir_block()
        count = 0
        while dirfmt.add_entry(block, 0, "x%02d" % count, dirfmt.ET_EMBEDDED,
                               dirfmt.DK_FILE, embedded_payload(count + 1)):
            count += 1
        assert count == 4

    def test_external_entries_are_small(self):
        block = dirfmt.init_dir_block()
        count = 0
        while dirfmt.add_entry(block, 0, "x%02d" % count, dirfmt.ET_EXTERNAL,
                               dirfmt.DK_FILE, struct.pack("<Q", count + 1)):
            count += 1
        assert count >= 20  # many more external refs fit per sector

    def test_too_long_name_rejected(self):
        block = dirfmt.init_dir_block()
        with pytest.raises(NameTooLong):
            dirfmt.add_entry(block, 0, "y" * 450, dirfmt.ET_EMBEDDED,
                             dirfmt.DK_FILE, embedded_payload())

    def test_payload_size_must_match(self):
        block = dirfmt.init_dir_block()
        with pytest.raises(InvalidArgument):
            dirfmt.add_entry(block, 0, "x", dirfmt.ET_EMBEDDED, dirfmt.DK_FILE, b"tiny")

    def test_remove_scrubs_inode(self):
        """Deleted embedded inodes are zeroed so stale ones never look
        live to fsck."""
        block = dirfmt.init_dir_block()
        off = dirfmt.add_entry(block, 0, "victim", dirfmt.ET_EMBEDDED,
                               dirfmt.DK_FILE, embedded_payload(9))
        dirfmt.remove_entry(block, "victim")
        fields = layout.unpack_cinode(bytes(block[off:off + layout.CINODE_SIZE]))
        assert fields["mode"] == layout.MODE_FREE

    def test_remove_keeps_others_in_place(self):
        block = dirfmt.init_dir_block()
        offs = {}
        for i, name in enumerate(("aa", "bb", "cc")):
            offs[name] = dirfmt.add_entry(block, 0, name, dirfmt.ET_EMBEDDED,
                                          dirfmt.DK_FILE, embedded_payload(i + 1))
        dirfmt.remove_entry(block, "bb")
        for name in ("aa", "cc"):
            found = dirfmt.find_entry(bytes(block), name)
            assert found is not None
            assert found[1][5] == offs[name]  # payload offset unchanged

    def test_rewrite_payload(self):
        block = dirfmt.init_dir_block()
        off = dirfmt.add_entry(block, 0, "f", dirfmt.ET_EMBEDDED,
                               dirfmt.DK_FILE, embedded_payload(3))
        node = CNode.unpack(bytes(block[off:off + layout.CINODE_SIZE]))
        node.size = 777
        dirfmt.rewrite_payload(block, off, node.pack())
        back = layout.unpack_cinode(bytes(block[off:off + layout.CINODE_SIZE]))
        assert back["size"] == 777

    def test_change_entry_type_to_external(self):
        block = dirfmt.init_dir_block()
        dirfmt.add_entry(block, 0, "linked", dirfmt.ET_EMBEDDED,
                         dirfmt.DK_FILE, embedded_payload(8))
        found = dirfmt.find_entry(bytes(block), "linked")
        entry_off = found[1][0]
        new_off = dirfmt.change_entry_type(
            block, entry_off, dirfmt.ET_EXTERNAL, struct.pack("<Q", 123)
        )
        found = dirfmt.find_entry(bytes(block), "linked")
        assert found[1][2] == dirfmt.ET_EXTERNAL
        assert struct.unpack_from("<Q", block, new_off)[0] == 123

    def test_sectors_independent(self):
        """Filling one sector leaves the others untouched."""
        block = dirfmt.init_dir_block()
        i = 0
        while dirfmt.add_entry(block, 3, "s3-%03d" % i, dirfmt.ET_EMBEDDED,
                               dirfmt.DK_FILE, embedded_payload(i + 1)) is not None:
            i += 1
        for s in (0, 1, 2, 4, 5, 6, 7):
            assert dirfmt.sector_free_bytes(bytes(block), s) == layout.SECTOR_SIZE

    @given(st.lists(names, min_size=1, max_size=40, unique=True), st.data())
    @settings(max_examples=50, deadline=None)
    def test_add_remove_property(self, entry_names, data):
        """Random adds/removes across sectors preserve the chain and the
        live-entry set."""
        block = dirfmt.init_dir_block()
        live = set()
        for i, name in enumerate(entry_names):
            sector = data.draw(st.integers(min_value=0, max_value=7), label="sector")
            if live and data.draw(st.booleans(), label="remove?"):
                victim = data.draw(st.sampled_from(sorted(live)), label="victim")
                assert dirfmt.remove_entry(block, victim) is not None
                live.discard(victim)
            if dirfmt.add_entry(block, sector, name, dirfmt.ET_EMBEDDED,
                                dirfmt.DK_FILE, embedded_payload(i + 1)) is not None:
                live.add(name)
            # Chain invariant across all sectors after each step.
            list(dirfmt.iter_block(bytes(block)))
        found = {e[4] for _s, e in dirfmt.live_entries(bytes(block))}
        assert found == live
