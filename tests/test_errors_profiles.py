"""Tests for the error hierarchy and the drive profile catalogue."""

import pytest

from repro import errors
from repro.disk.profiles import (
    HP_C2247,
    HP_C3653,
    PROFILES,
    QUANTUM_ATLAS_II,
    SEAGATE_BARRACUDA_4LP,
    SEAGATE_ST31200,
    TABLE1_DRIVES,
)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(errors.FileNotFound, errors.FileSystemError)
        assert issubclass(errors.FileSystemError, errors.ReproError)
        assert issubclass(errors.AddressError, errors.DiskError)
        assert issubclass(errors.DiskError, errors.ReproError)

    def test_errno_names(self):
        assert errors.FileNotFound.errno_name == "ENOENT"
        assert errors.FileExists.errno_name == "EEXIST"
        assert errors.DirectoryNotEmpty.errno_name == "ENOTEMPTY"
        assert errors.NoSpace.errno_name == "ENOSPC"
        assert errors.BadFileDescriptor.errno_name == "EBADF"

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.CorruptFileSystem("boom")


class TestProfiles:
    def test_catalogue_complete(self):
        assert len(PROFILES) == 5
        for profile in PROFILES.values():
            assert profile.capacity_bytes > 0
            assert profile.cylinders > 100

    def test_seek_curves_fit_for_all(self):
        """Every published profile yields a monotone seek curve hitting
        its three published points."""
        for profile in PROFILES.values():
            curve = profile.seek_curve()
            assert curve.seek_time(1) == pytest.approx(
                profile.single_cyl_seek_ms * 1e-3, rel=0.01
            )
            assert curve.seek_time(profile.cylinders - 1) == pytest.approx(
                profile.full_seek_ms * 1e-3, rel=0.05
            )
            prev = 0.0
            for d in (1, 10, 100, 1000, profile.cylinders - 1):
                t = curve.seek_time(d)
                assert t >= prev
                prev = t

    def test_geometry_consistent(self):
        for profile in PROFILES.values():
            geometry = profile.geometry()
            assert geometry.cylinders == profile.cylinders
            assert geometry.capacity_bytes == profile.capacity_bytes

    def test_paper_seek_values_encoded(self):
        assert HP_C3653.avg_seek_ms == 8.7
        assert SEAGATE_BARRACUDA_4LP.avg_seek_ms == 8.0
        assert QUANTUM_ATLAS_II.avg_seek_ms == 7.9
        assert HP_C3653.full_seek_ms == 16.5
        assert SEAGATE_BARRACUDA_4LP.full_seek_ms == 19.0
        assert QUANTUM_ATLAS_II.full_seek_ms == 18.0

    def test_c2247_claim(self):
        """Paper: the HP C2247 'had only half as many sectors on each
        track as the HP C3653 ... but an average access time that was
        only 33% higher'."""
        ratio = HP_C2247.zone_table[0][1] / HP_C3653.zone_table[0][1]
        assert ratio == pytest.approx(0.5)
        c2247_access = HP_C2247.avg_seek_ms + HP_C2247.rotation_ms / 2
        c3653_access = HP_C3653.avg_seek_ms + HP_C3653.rotation_ms / 2
        assert c2247_access / c3653_access == pytest.approx(1.33, abs=0.12)

    def test_bandwidth_improved_faster_than_access_time(self):
        """The motivating trend: per-byte costs fall much faster than
        per-request costs."""
        bw_ratio = HP_C3653.max_media_mb_per_s / HP_C2247.max_media_mb_per_s
        access_ratio = (
            (HP_C2247.avg_seek_ms + HP_C2247.rotation_ms / 2)
            / (HP_C3653.avg_seek_ms + HP_C3653.rotation_ms / 2)
        )
        assert bw_ratio > 2.0
        assert access_ratio < 1.5

    def test_with_overrides(self):
        quiet = SEAGATE_ST31200.with_overrides(write_cache=False, cache_segments=0)
        assert quiet.write_cache is False
        assert quiet.cache_segments == 0
        assert quiet.rpm == SEAGATE_ST31200.rpm
        assert SEAGATE_ST31200.write_cache is True  # original untouched

    def test_table1_drives_are_the_1996_trio(self):
        names = {p.name for p in TABLE1_DRIVES}
        assert names == {"HP C3653", "Seagate Barracuda 4LP", "Quantum Atlas II"}
