"""Tests for optional FS-level sequential prefetch (future-work
feature; the paper's implementation lacked prefetching)."""


from repro.blockdev.device import BLOCK_SIZE
from tests.conftest import make_cffs, make_ffs


def sequential_fd_read(fs, path: str, chunk: int = BLOCK_SIZE) -> int:
    """Read a file block-at-a-time through an fd; returns bytes read."""
    fd = fs.open(path)
    total = 0
    try:
        while True:
            data = fs.read(fd, chunk)
            if not data:
                break
            total += len(data)
    finally:
        fs.close(fd)
    return total


class TestPrefetchBehaviour:
    def test_disabled_by_default(self):
        fs = make_cffs()
        assert fs.file_readahead_blocks == 0

    def test_content_identical_with_prefetch(self):
        data = bytes(range(256)) * (BLOCK_SIZE // 256) * 30
        plain = make_cffs()
        plain.write_file("/f", data)
        pref = make_cffs(file_readahead_blocks=8)
        pref.write_file("/f", data)
        for fs in (plain, pref):
            fs.sync()
            fs.drop_caches()
        assert plain.read_file("/f") == pref.read_file("/f") == data

    def test_prefetch_reduces_requests_for_fd_loop(self):
        """Block-at-a-time fd reads of a large file: prefetch batches
        the misses."""
        data = b"L" * (40 * BLOCK_SIZE)

        def run(ra: int) -> int:
            fs = make_cffs(file_readahead_blocks=ra)
            fs.write_file("/big", data)
            fs.sync()
            fs.drop_caches()
            before = fs.device.disk.stats.reads
            assert sequential_fd_read(fs, "/big") == len(data)
            return fs.device.disk.stats.reads - before

        assert run(8) < run(0)

    def test_prefetch_never_hurts_contiguous_files(self):
        """On a contiguously-laid-out file the drive's own read-ahead
        already streams, so FS prefetch must be near-free (within a few
        percent), not harmful."""
        data = b"F" * (30 * BLOCK_SIZE)

        def run(ra: int) -> float:
            fs = make_ffs(file_readahead_blocks=ra)
            fs.write_file("/big", data)
            fs.sync()
            fs.drop_caches()
            start = fs.device.clock.now
            sequential_fd_read(fs, "/big")
            return fs.device.clock.now - start

        assert run(8) <= run(0) * 1.05

    def test_random_access_triggers_no_prefetch(self):
        fs = make_cffs(file_readahead_blocks=8)
        fs.write_file("/big", b"r" * (30 * BLOCK_SIZE))
        fs.sync()
        fs.drop_caches()
        fd = fs.open("/big")
        before = fs.device.disk.stats.sectors_read
        # Alternate ends of the file: never two sequential reads.
        for i in range(6):
            offset = (i % 2) * 25 * BLOCK_SIZE + (i // 2) * BLOCK_SIZE * 2
            fs.pread(fd, offset, BLOCK_SIZE)
        fs.close(fd)
        read_blocks = (fs.device.disk.stats.sectors_read - before) // 8
        assert read_blocks <= 10  # no wholesale speculative fetching

    def test_prefetch_stops_at_eof(self):
        fs = make_cffs(file_readahead_blocks=64)
        fs.write_file("/small", b"e" * (3 * BLOCK_SIZE))
        fs.sync()
        fs.drop_caches()
        assert sequential_fd_read(fs, "/small") == 3 * BLOCK_SIZE

    def test_streak_state_cleared_on_drop(self):
        fs = make_cffs(file_readahead_blocks=8)
        fs.write_file("/f", b"s" * (10 * BLOCK_SIZE))
        sequential_fd_read(fs, "/f")
        fs.sync()
        fs.drop_caches()
        assert fs._seq_state == {}
