"""Tests for the drive request log and its analysis helpers."""

import pytest

from repro.analysis.requestlog import compare_streams, render_summary, summarize
from repro.disk.drive import SimulatedDisk
from repro.disk.stats import RequestRecord
from tests.conftest import TEST_PROFILE, make_cffs


def rec(op, lba, n, issue=0.0, completion=0.001, source="media"):
    return RequestRecord(op=op, lba=lba, nsectors=n, issue=issue,
                         completion=completion, source=source)


class TestLogCapture:
    def test_disabled_by_default(self):
        disk = SimulatedDisk(TEST_PROFILE)
        disk.read(0, 8)
        assert disk.request_log is None

    def test_captures_reads_and_writes(self):
        disk = SimulatedDisk(TEST_PROFILE)
        disk.start_request_log()
        disk.read(0, 8)
        disk.write(100, 8)
        log = disk.stop_request_log()
        assert [r.op for r in log] == ["read", "write"]
        assert log[0].lba == 0
        assert log[1].source == "buffer"  # write-behind profile

    def test_latency_positive_and_ordered(self):
        disk = SimulatedDisk(TEST_PROFILE)
        disk.start_request_log()
        for i in range(5):
            disk.read(i * 500, 8)
        log = disk.stop_request_log()
        for record in log:
            assert record.latency > 0
        issues = [r.issue for r in log]
        assert issues == sorted(issues)

    def test_source_classification(self):
        disk = SimulatedDisk(TEST_PROFILE)
        disk.start_request_log()
        disk.read(0, 8)       # media
        disk.read(0, 8)       # cache (same segment)
        disk.write(5000, 8)   # buffer
        disk.read(5000, 8)    # buffer (pending write)
        log = disk.stop_request_log()
        assert [r.source for r in log] == ["media", "cache", "buffer", "buffer"]

    def test_stop_clears(self):
        disk = SimulatedDisk(TEST_PROFILE)
        disk.start_request_log()
        disk.read(0, 8)
        disk.stop_request_log()
        assert disk.request_log is None
        assert disk.stop_request_log() == []


class TestSummarize:
    def test_counts(self):
        log = [rec("read", 0, 8), rec("write", 8, 8), rec("read", 16, 16)]
        s = summarize(log)
        assert s.requests == 3
        assert s.reads == 2
        assert s.writes == 1
        assert s.sectors == 32

    def test_sequentiality(self):
        log = [rec("read", 0, 8), rec("read", 8, 8), rec("read", 100, 8)]
        s = summarize(log)
        assert s.adjacent_pairs == 1
        assert s.sequentiality == pytest.approx(0.5)

    def test_backward_pairs(self):
        log = [rec("read", 100, 8), rec("read", 0, 8)]
        assert summarize(log).backward_pairs == 1

    def test_empty(self):
        s = summarize([])
        assert s.requests == 0
        assert s.sequentiality == 0.0
        assert s.mean_latency_ms == 0.0

    def test_size_histogram(self):
        log = [rec("read", 0, 8), rec("read", 50, 8), rec("read", 90, 128)]
        s = summarize(log)
        assert s.size_histogram == {8: 2, 128: 1}

    def test_render(self):
        text = render_summary(summarize([rec("read", 0, 8)]), "mine")
        assert "mine" in text
        assert "requests" in text

    def test_compare(self):
        a = summarize([rec("read", 0, 8)])
        b = summarize([rec("read", 0, 128)])
        text = compare_streams({"small": a, "large": b})
        assert "small" in text and "large" in text


class TestWorkloadStreams:
    def test_cffs_stream_is_larger_and_fewer(self):
        """The mechanism, visible in the request stream: C-FFS issues
        fewer, larger requests for the same reads."""
        def capture(fs):
            fs.mkdir("/d")
            for i in range(30):
                fs.write_file("/d/f%02d" % i, b"s" * 1024)
            fs.sync()
            fs.drop_caches()
            fs.device.disk.start_request_log()
            for i in range(30):
                fs.read_file("/d/f%02d" % i)
            return summarize(fs.device.disk.stop_request_log())

        cffs = capture(make_cffs())
        conv = capture(make_cffs(embedded=False, grouping=False))
        assert cffs.requests < conv.requests / 2
        assert cffs.mean_size_kb > 2 * conv.mean_size_kb
