"""Tests for workload generators: small-file benchmark, size
distribution, aging, and the application suite."""

import random

import pytest

from repro.fsck import fsck_cffs
from repro.workloads import (
    age_filesystem,
    build_source_tree,
    fraction_under,
    run_app_suite,
    run_size_sweep,
    run_smallfile,
    sample_file_size,
)
from tests.conftest import make_cffs


class TestSmallFile:
    def test_phases_present(self):
        fs = make_cffs()
        result = run_smallfile(fs, n_files=60, file_size=1024)
        assert set(result.phases) == {"create", "read", "overwrite", "delete"}

    def test_all_phases_take_time(self):
        fs = make_cffs()
        result = run_smallfile(fs, n_files=60, file_size=1024)
        for phase in result.phases.values():
            assert phase.seconds > 0
            assert phase.files_per_second > 0

    def test_files_gone_after_delete(self):
        fs = make_cffs()
        run_smallfile(fs, n_files=40, file_size=1024)
        assert fs.readdir("/bench") == []

    def test_request_accounting(self):
        fs = make_cffs()
        result = run_smallfile(fs, n_files=40, file_size=1024)
        read = result["read"]
        assert read.disk_requests == read.disk_reads + read.disk_writes
        assert read.disk_reads > 0

    def test_multiple_directories(self):
        fs = make_cffs()
        result = run_smallfile(fs, n_files=60, file_size=1024, n_dirs=4)
        assert result["create"].n_files == 60
        assert fs.readdir("/bench") != []  # the subdirectories remain

    def test_image_clean_afterwards(self):
        fs = make_cffs()
        run_smallfile(fs, n_files=40, file_size=1024)
        assert fsck_cffs(fs.device).ok

    def test_payload_validation(self):
        fs = make_cffs()
        with pytest.raises(ValueError):
            run_smallfile(fs, n_files=4, file_size=10, payload=b"wrong length")

    def test_subset_of_phases(self):
        fs = make_cffs()
        result = run_smallfile(fs, n_files=30, file_size=1024,
                               phases=("create", "read"))
        assert set(result.phases) == {"create", "read"}


class TestSizeDistribution:
    def test_survey_calibration(self):
        """The paper: '79% of all files ... are less than 8 KB'."""
        assert fraction_under(8192) == pytest.approx(0.79, abs=0.02)

    def test_most_files_small(self):
        assert fraction_under(65536) > 0.95

    def test_tail_exists(self):
        rng = random.Random(1)
        sizes = [sample_file_size(rng) for _ in range(5000)]
        assert max(sizes) > 256 * 1024

    def test_deterministic_for_seed(self):
        a = [sample_file_size(random.Random(5)) for _ in range(10)]
        b = [sample_file_size(random.Random(5)) for _ in range(10)]
        assert a == b

    def test_sizes_positive(self):
        rng = random.Random(2)
        assert all(sample_file_size(rng) > 0 for _ in range(1000))


class TestSizeSweep:
    def test_sweep_points(self):
        fs = make_cffs()
        points = run_size_sweep(fs, [1024, 8192], total_bytes=64 * 1024)
        assert len(points) == 2
        assert points[0].file_size == 1024
        assert points[0].n_files > points[1].n_files

    def test_throughput_grows_with_file_size(self):
        fs = make_cffs(embedded=False, grouping=False)
        points = run_size_sweep(fs, [1024, 32768], total_bytes=128 * 1024)
        assert points[1].read_mb_per_s > points[0].read_mb_per_s


class TestAging:
    def test_reaches_target_utilization(self):
        fs = make_cffs()
        result = age_filesystem(fs, target_utilization=0.5, operations=1200,
                                n_dirs=2, max_file_bytes=64 * 1024)
        assert result.utilization == pytest.approx(0.5, abs=0.12)
        assert result.creations > result.deletions

    def test_low_utilization(self):
        fs = make_cffs()
        result = age_filesystem(fs, target_utilization=0.15, operations=800,
                                n_dirs=2, max_file_bytes=64 * 1024)
        assert result.utilization < 0.3

    def test_operations_counted(self):
        fs = make_cffs()
        result = age_filesystem(fs, target_utilization=0.3, operations=500,
                                n_dirs=2, max_file_bytes=32 * 1024)
        assert result.creations + result.deletions == 500

    def test_deterministic(self):
        r1 = age_filesystem(make_cffs(), 0.3, operations=300, n_dirs=2,
                            max_file_bytes=32 * 1024, seed=9)
        r2 = age_filesystem(make_cffs(), 0.3, operations=300, n_dirs=2,
                            max_file_bytes=32 * 1024, seed=9)
        assert r1 == r2

    def test_aged_image_clean(self):
        fs = make_cffs()
        age_filesystem(fs, target_utilization=0.4, operations=600, n_dirs=2,
                       max_file_bytes=64 * 1024)
        report = fsck_cffs(fs.device)
        assert report.ok, report.render()

    def test_rejects_extreme_targets(self):
        with pytest.raises(ValueError):
            age_filesystem(make_cffs(), 0.99)

    def test_aging_fragments_groups(self):
        """After churn, explicit groups carry holes: live spans exceed
        their live block counts somewhere."""
        fs = make_cffs()
        age_filesystem(fs, target_utilization=0.5, operations=1500, n_dirs=2,
                       max_file_bytes=32 * 1024, seed=3)
        from repro.core.layout import EXT_GROUPED

        fragmented = 0
        for cgi in range(fs.groups.n_cgs):
            for idx in range(fs.groups.extents_per_cg):
                desc = fs.groups.read_desc((cgi, idx))
                if desc["state"] == EXT_GROUPED:
                    mask = desc["valid_mask"]
                    bits = [s for s in range(fs.config.group_span)
                            if mask & (1 << s)]
                    if bits and len(bits) < bits[-1] - bits[0] + 1:
                        fragmented += 1
        assert fragmented > 0


class TestAppSuite:
    def test_tree_built(self):
        fs = make_cffs()
        tree = build_source_tree(fs, n_dirs=2, files_per_dir=6, n_headers=3,
                                 max_file_bytes=16 * 1024)
        assert fs.exists(tree.root)
        assert len(tree.files) == 2 * 6 + 3
        for path, size in tree.files:
            assert fs.stat(path).size == size

    def test_suite_runs_all_passes(self):
        fs = make_cffs()
        tree = build_source_tree(fs, n_dirs=2, files_per_dir=5, n_headers=3,
                                 max_file_bytes=16 * 1024)
        result = run_app_suite(fs, tree)
        assert set(result.seconds) == {"copy", "scan", "compile", "clean"}
        assert all(v > 0 for v in result.seconds.values())

    def test_copy_creates_parallel_tree(self):
        fs = make_cffs()
        tree = build_source_tree(fs, n_dirs=2, files_per_dir=4, n_headers=2,
                                 max_file_bytes=8 * 1024)
        run_app_suite(fs, tree)
        src = fs.read_file(tree.files[-1][0])
        dst = fs.read_file(tree.root + "-copy" + tree.files[-1][0][len(tree.root):])
        assert src == dst

    def test_clean_removes_objects(self):
        fs = make_cffs()
        tree = build_source_tree(fs, n_dirs=1, files_per_dir=4, n_headers=2,
                                 max_file_bytes=8 * 1024)
        run_app_suite(fs, tree)
        for path, _ in tree.files:
            if path.endswith(".c"):
                assert not fs.exists(path[:-2] + ".o")

    def test_image_clean_afterwards(self):
        fs = make_cffs()
        tree = build_source_tree(fs, n_dirs=2, files_per_dir=4, n_headers=2,
                                 max_file_bytes=8 * 1024)
        run_app_suite(fs, tree)
        report = fsck_cffs(fs.device)
        assert report.ok, report.render()
