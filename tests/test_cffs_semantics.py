"""C-FFS-specific semantics: embedding, externalization, explicit
grouping, and large-file migration."""


from repro.blockdev.device import BLOCK_SIZE
from repro.core import layout
from repro.core.inode import LOC_DIR, LOC_EXT, LOC_SUPER
from tests.conftest import make_cffs


class TestEmbedding:
    def test_new_file_is_embedded(self, cffs):
        cffs.create("/a")
        assert cffs.stat("/a").embedded

    def test_root_inode_in_superblock(self, cffs):
        root = cffs._root_handle()
        assert root.loc == (LOC_SUPER,)

    def test_subdirectory_embedded_in_parent(self, cffs):
        cffs.mkdir("/d")
        handle = cffs._resolve("/d")
        assert handle.loc[0] == LOC_DIR
        assert handle.loc[1] is cffs._root_handle()

    def test_no_static_inode_consumption(self, cffs):
        """Creating files costs no inode-table space (only dir blocks)."""
        free0 = cffs.free_blocks()
        for i in range(30):
            cffs.create("/f%02d" % i)
        # Only the root directory's data block was consumed.
        assert free0 - cffs.free_blocks() <= 1

    def test_conventional_config_uses_external(self):
        fs = make_cffs(embedded=False, grouping=False)
        fs.create("/a")
        assert not fs.stat("/a").embedded
        handle = fs._resolve("/a")
        assert handle.loc[0] == LOC_EXT


class TestExternalization:
    def test_link_externalizes(self, cffs):
        cffs.write_file("/a", b"data")
        assert cffs.stat("/a").embedded
        cffs.link("/a", "/b")
        assert not cffs.stat("/a").embedded
        assert cffs._resolve("/a").loc[0] == LOC_EXT

    def test_externalized_survives_cold_remount(self, cffs):
        cffs.write_file("/a", b"payload")
        cffs.link("/a", "/b")
        cffs.sync()
        remounted = type(cffs).mount(cffs.device, cffs.config)
        assert remounted.read_file("/a") == b"payload"
        assert remounted.read_file("/b") == b"payload"
        assert remounted.stat("/a").nlink == 2

    def test_external_table_grows_once(self, cffs):
        for i in range(3):
            cffs.write_file("/f%d" % i, b"x")
            cffs.link("/f%d" % i, "/l%d" % i)
        assert cffs.sb["ext_size"] == BLOCK_SIZE  # 32 slots per block

    def test_external_slots_reused(self, cffs):
        cffs.create("/a")
        cffs.link("/a", "/b")
        cffs.unlink("/a")
        cffs.unlink("/b")
        cffs.create("/c")
        cffs.link("/c", "/d")
        assert cffs.sb["ext_size"] == BLOCK_SIZE

    def test_stays_external_after_link_drop(self, cffs):
        """Externalization is one-way (the paper does not re-embed)."""
        cffs.create("/a")
        cffs.link("/a", "/b")
        cffs.unlink("/b")
        assert not cffs.stat("/a").embedded


class TestGrouping:
    def test_small_file_grouped(self, cffs):
        cffs.write_file("/a", b"x" * 1024)
        assert cffs.stat("/a").grouped

    def test_siblings_share_extent(self, cffs):
        cffs.mkdir("/d")
        for i in range(8):
            cffs.write_file("/d/f%d" % i, b"y" * 1024)
        handles = [cffs._resolve("/d/f%d" % i) for i in range(8)]
        extents = {cffs.groups.extent_of_block(h.direct[0]) for h in handles}
        assert len(extents) == 1

    def test_grouped_blocks_adjacent(self, cffs):
        cffs.mkdir("/d")
        for i in range(8):
            cffs.write_file("/d/f%d" % i, b"y" * 1024)
        bnos = sorted(cffs._resolve("/d/f%d" % i).direct[0] for i in range(8))
        assert bnos == list(range(bnos[0], bnos[0] + 8))

    def test_different_dirs_different_groups(self, cffs):
        cffs.mkdir("/d1")
        cffs.mkdir("/d2")
        cffs.write_file("/d1/a", b"1" * 1024)
        cffs.write_file("/d2/b", b"2" * 1024)
        e1 = cffs.groups.extent_of_block(cffs._resolve("/d1/a").direct[0])
        e2 = cffs.groups.extent_of_block(cffs._resolve("/d2/b").direct[0])
        assert e1 != e2

    def test_group_read_installs_siblings(self, cffs):
        """Reading one grouped file fetches the whole group in one
        request and installs siblings by physical address."""
        cffs.mkdir("/d")
        for i in range(10):
            cffs.write_file("/d/f%d" % i, bytes([i]) * 1024)
        cffs.sync()
        cffs.drop_caches()
        cffs.read_file("/d/f0")
        stats = cffs.device.disk.stats
        before = stats.reads
        # Sibling reads are now cache hits: no further disk reads.
        for i in range(1, 10):
            assert cffs.read_file("/d/f%d" % i) == bytes([i]) * 1024
        assert stats.reads == before

    def test_group_slot_freed_on_unlink(self, cffs):
        cffs.mkdir("/d")
        cffs.write_file("/d/a", b"a" * 1024)
        cffs.write_file("/d/b", b"b" * 1024)
        ext = cffs.groups.extent_of_block(cffs._resolve("/d/a").direct[0])
        mask_before = cffs.groups.read_desc(ext)["valid_mask"]
        cffs.unlink("/d/a")
        mask_after = cffs.groups.read_desc(ext)["valid_mask"]
        assert bin(mask_after).count("1") == bin(mask_before).count("1") - 1

    def test_extent_released_when_empty(self, cffs):
        cffs.mkdir("/d")
        cffs.write_file("/d/a", b"a" * 1024)
        ext = cffs.groups.extent_of_block(cffs._resolve("/d/a").direct[0])
        free_with_group = cffs.free_blocks()
        cffs.unlink("/d/a")
        assert cffs.groups.read_desc(ext)["state"] == layout.EXT_FREE
        assert cffs.free_blocks() == free_with_group + cffs.config.group_span

    def test_deleted_slot_reused(self, cffs):
        cffs.mkdir("/d")
        for i in range(5):
            cffs.write_file("/d/f%d" % i, b"z" * 1024)
        victim_bno = cffs._resolve("/d/f2").direct[0]
        cffs.unlink("/d/f2")
        cffs.write_file("/d/fnew", b"n" * 1024)
        assert cffs._resolve("/d/fnew").direct[0] == victim_bno

    def test_group_descriptor_records_owner(self, cffs):
        cffs.mkdir("/d")
        cffs.write_file("/d/a", b"a" * 1024)
        dirh = cffs._resolve("/d")
        ext = cffs.groups.extent_of_block(cffs._resolve("/d/a").direct[0])
        assert cffs.groups.read_desc(ext)["owner"] == dirh.fileid

    def test_slot_records_file_and_offset(self, cffs):
        cffs.mkdir("/d")
        cffs.write_file("/d/a", b"a" * (3 * 1024 * 4))  # 3 blocks
        h = cffs._resolve("/d/a")
        for idx in range(3):
            bno = h.direct[idx]
            ext = cffs.groups.extent_of_block(bno)
            desc = cffs.groups.read_desc(ext)
            slot = bno - cffs.groups.extent_base(ext)
            assert desc["slots"][slot] == (h.fileid, idx)

    def test_grouping_disabled_config(self):
        fs = make_cffs(grouping=False)
        fs.write_file("/a", b"x" * 1024)
        assert not fs.stat("/a").grouped

    def test_directory_data_not_grouped(self, cffs):
        cffs.mkdir("/d")
        for i in range(40):
            cffs.create("/d/f%02d" % i)
        dirh = cffs._resolve("/d")
        ext = cffs.groups.extent_of_block(dirh.direct[0])
        if ext is not None:
            assert cffs.groups.read_desc(ext)["state"] != layout.EXT_GROUPED


class TestLargeFileMigration:
    def test_large_file_not_grouped(self, cffs):
        big = BLOCK_SIZE * (cffs.config.smallfile_max_blocks + 4)
        cffs.write_file("/big", b"B" * big)
        st = cffs.stat("/big")
        assert not st.grouped
        assert cffs._resolve("/big").is_large

    def test_migration_preserves_content(self, cffs):
        data = bytes(range(256)) * ((BLOCK_SIZE // 256) * 20)
        fd = cffs.open("/grow", create=True)
        # Grow incrementally through the threshold.
        for i in range(0, len(data), 4096):
            cffs.pwrite(fd, i, data[i:i + 4096])
        cffs.close(fd)
        assert cffs.read_file("/grow") == data

    def test_migrated_slots_released(self, cffs):
        cffs.mkdir("/d")
        cffs.write_file("/d/small", b"s" * 1024)
        small_ext = cffs.groups.extent_of_block(cffs._resolve("/d/small").direct[0])
        big = BLOCK_SIZE * (cffs.config.smallfile_max_blocks + 2)
        cffs.write_file("/d/grow", b"g" * 1024)
        cffs.write_file("/d/grow", b"g" * big)  # overwrite bigger
        desc = cffs.groups.read_desc(small_ext)
        # Only the small file's slot remains in the group.
        owners = {fid for fid, _ in desc["slots"] if fid}
        assert owners == {cffs._resolve("/d/small").fileid}

    def test_large_file_survives_cold_read(self, cffs):
        big = b"L" * (BLOCK_SIZE * 20)
        cffs.write_file("/big", big)
        cffs.sync()
        cffs.drop_caches()
        assert cffs.read_file("/big") == big

    def test_large_flag_persists(self, cffs):
        cffs.write_file("/big", b"x" * (BLOCK_SIZE * 16))
        cffs.sync()
        remounted = type(cffs).mount(cffs.device, cffs.config)
        assert remounted._resolve("/big").is_large


class TestSyncWriteCounts:
    """The paper's core metadata claim: embedded inodes halve (create)
    or better (delete) the synchronous write count."""

    def _creates(self, fs, n=20):
        fs.mkdir("/d")
        fs.sync()
        before = fs.device.disk.stats.writes
        for i in range(n):
            fs.create("/d/f%03d" % i)
        return fs.device.disk.stats.writes - before

    def test_embedded_create_single_write(self):
        fs = make_cffs(embedded=True, grouping=False)
        writes = self._creates(fs, 20)
        assert writes <= 22  # ~1 per create (+ dir growth)

    def test_external_create_two_writes(self):
        fs = make_cffs(embedded=False, grouping=False)
        writes = self._creates(fs, 20)
        assert writes >= 40  # 2 per create

    def test_embedded_delete_single_write(self):
        fs = make_cffs(embedded=True, grouping=False)
        for i in range(20):
            fs.create("/f%03d" % i)
        fs.sync()
        before = fs.device.disk.stats.writes
        for i in range(20):
            fs.unlink("/f%03d" % i)
        assert fs.device.disk.stats.writes - before <= 21

    def test_external_delete_three_writes(self):
        fs = make_cffs(embedded=False, grouping=False)
        for i in range(20):
            fs.create("/f%03d" % i)
        fs.sync()
        before = fs.device.disk.stats.writes
        for i in range(20):
            fs.unlink("/f%03d" % i)
        assert fs.device.disk.stats.writes - before >= 60

    def test_softdep_mode_no_sync_writes(self):
        from repro.cache.policy import MetadataPolicy

        fs = make_cffs(policy=MetadataPolicy.DELAYED_METADATA)
        before = fs.device.disk.stats.writes
        for i in range(20):
            fs.create("/f%03d" % i)
        assert fs.device.disk.stats.writes == before  # all delayed
