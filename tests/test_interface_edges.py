"""Edge-case coverage for the public FileSystem API surface."""

import pytest

from repro.blockdev.device import BLOCK_SIZE
from repro.errors import (
    FileNotFound,
    InvalidArgument,
    NameTooLong,
    NotADirectory,
)


class TestArgumentValidation:
    def test_negative_seek(self, anyfs):
        fd = anyfs.open("/f", create=True)
        with pytest.raises(InvalidArgument):
            anyfs.seek(fd, -1)
        anyfs.close(fd)

    def test_negative_pread_offset(self, anyfs):
        fd = anyfs.open("/f", create=True)
        with pytest.raises(InvalidArgument):
            anyfs.pread(fd, -1, 10)
        anyfs.close(fd)

    def test_negative_read_size(self, anyfs):
        fd = anyfs.open("/f", create=True)
        with pytest.raises(InvalidArgument):
            anyfs.pread(fd, 0, -5)
        anyfs.close(fd)

    def test_negative_pwrite_offset(self, anyfs):
        fd = anyfs.open("/f", create=True)
        with pytest.raises(InvalidArgument):
            anyfs.pwrite(fd, -1, b"x")
        anyfs.close(fd)

    def test_negative_truncate(self, anyfs):
        anyfs.create("/f")
        with pytest.raises(InvalidArgument):
            anyfs.truncate("/f", -1)

    def test_empty_write_is_noop(self, anyfs):
        fd = anyfs.open("/f", create=True)
        assert anyfs.pwrite(fd, 0, b"") == 0
        anyfs.close(fd)
        assert anyfs.stat("/f").size == 0

    def test_write_file_empty_truncates(self, anyfs):
        anyfs.write_file("/f", b"content")
        anyfs.write_file("/f", b"")
        assert anyfs.stat("/f").size == 0
        assert anyfs.read_file("/f") == b""

    def test_relative_path_rejected(self, anyfs):
        with pytest.raises(InvalidArgument):
            anyfs.create("relative/path")

    def test_dot_path_rejected(self, anyfs):
        with pytest.raises(InvalidArgument):
            anyfs.stat("/a/../b")

    def test_very_long_name_rejected(self, anyfs):
        with pytest.raises(NameTooLong):
            anyfs.create("/" + "n" * 300)

    def test_open_missing_without_create(self, anyfs):
        with pytest.raises(FileNotFound):
            anyfs.open("/missing")

    def test_path_through_file(self, anyfs):
        anyfs.write_file("/plainfile", b"x")
        with pytest.raises(NotADirectory):
            anyfs.read_file("/plainfile/child")


class TestOffsetSemantics:
    def test_interleaved_read_write_fd(self, anyfs):
        fd = anyfs.open("/f", create=True)
        anyfs.write(fd, b"aaaa")
        anyfs.seek(fd, 2)
        anyfs.write(fd, b"BB")
        anyfs.seek(fd, 0)
        assert anyfs.read(fd, 10) == b"aaBB"
        anyfs.close(fd)

    def test_two_fds_independent_offsets(self, anyfs):
        anyfs.write_file("/f", b"0123456789")
        fd1 = anyfs.open("/f")
        fd2 = anyfs.open("/f")
        assert anyfs.read(fd1, 3) == b"012"
        assert anyfs.read(fd2, 3) == b"012"
        assert anyfs.read(fd1, 3) == b"345"
        anyfs.close(fd1)
        anyfs.close(fd2)

    def test_write_past_eof_creates_hole(self, anyfs):
        fd = anyfs.open("/f", create=True)
        anyfs.pwrite(fd, 5 * BLOCK_SIZE + 7, b"tail")
        anyfs.close(fd)
        st = anyfs.stat("/f")
        assert st.size == 5 * BLOCK_SIZE + 11
        assert st.nblocks == 1  # only the tail block is allocated

    def test_pwrite_then_pread_same_fd(self, anyfs):
        fd = anyfs.open("/f", create=True)
        anyfs.pwrite(fd, 100, b"spot")
        assert anyfs.pread(fd, 100, 4) == b"spot"
        # positional I/O must not disturb the seek offset
        assert anyfs.read(fd, 2) == b"\0\0"
        anyfs.close(fd)


class TestStatDetails:
    def test_nblocks_counts_data_only(self, anyfs):
        anyfs.write_file("/f", b"d" * (14 * BLOCK_SIZE))  # needs an indirect
        assert anyfs.stat("/f").nblocks == 14

    def test_file_ids_unique(self, anyfs):
        anyfs.create("/a")
        anyfs.create("/b")
        assert anyfs.stat("/a").file_id != anyfs.stat("/b").file_id

    def test_file_id_stable_across_rename(self, anyfs):
        anyfs.create("/a")
        fid = anyfs.stat("/a").file_id
        anyfs.rename("/a", "/b")
        assert anyfs.stat("/b").file_id == fid

    def test_root_is_directory(self, anyfs):
        st = anyfs.stat("/")
        assert st.is_dir
        assert st.nlink >= 1


class TestSyncBehaviour:
    def test_sync_idempotent(self, anyfs):
        anyfs.write_file("/f", b"x" * 5000)
        anyfs.sync()
        before = anyfs.device.disk.stats.writes
        anyfs.sync()
        second = anyfs.device.disk.stats.writes - before
        assert second <= 2  # at most superblock/descriptor rewrites

    def test_drop_caches_preserves_everything(self, anyfs):
        paths = {}
        for i in range(15):
            path = "/persist%02d" % i
            data = bytes([i]) * (100 * (i + 1))
            anyfs.write_file(path, data)
            paths[path] = data
        anyfs.drop_caches()
        for path, data in paths.items():
            assert anyfs.read_file(path) == data
