"""Cluster fault tolerance: health, routing, retry, evacuation, chaos.

Five claims are pinned here:

- **Health classification** — taxonomy exceptions and replayed error
  strings drive the per-shard monotonic state machine exactly as the
  budgets say, and every transition is mirrored into the cluster
  metrics registry.
- **Health-aware routing** — both routers keep new placements off
  READ_ONLY/FAILED shards, prefer HEALTHY over DEGRADED, and are
  byte-identical to the pre-health behavior when no hook is attached.
- **Retry and redirect** — the facade absorbs transient shard faults
  within the retry budget, annotates surfaced errors with their shard,
  and turns writes against a demoted shard into an evacuate-and-
  redirect instead of a hard failure.
- **Evacuation crash safety** — the copy-then-adopt protocol, killed
  at every landed media write, always recovers to exactly one intact
  copy of every file, with the adopt record as the commit point.
- **Chaos acceptance** — one shard of four killed mid-Zipf-storm:
  the survivors clear the availability floor, every evacuated byte
  CRC-verifies through the facade, nothing is stranded, and the whole
  report is byte-identical across identically-seeded runs.
"""

import json

import pytest

from repro.blockdev.device import BlockDevice
from repro.cache.policy import MetadataPolicy
from repro.cluster import (
    ChaosConfig,
    Cluster,
    ClusterHealth,
    ClusterRetryPolicy,
    HashRouter,
    HealthState,
    ShardHealthPolicy,
    TrafficConfig,
    UtilizationRouter,
    adopted_tops,
    chaos_summary,
    parse_fault_spec,
    render_chaos,
    run_cluster_chaos,
    validate_chaos_summary,
)
from repro.core.filesystem import CFFS, CFFSConfig
from repro.errors import (
    DeviceDegraded,
    FileNotFound,
    InvalidArgument,
    MediaWriteError,
    PowerLoss,
    ReadOnlyFileSystem,
    TransientDiskError,
)
from repro.faults.proxy import FaultyBlockDevice
from repro.faults.schedule import FaultSchedule
from repro.fsck import fsck_cffs
from repro.obs.metrics import MetricsRegistry
from tests.conftest import TEST_PROFILE

CHAOS_SMALL = dict(clients=80, ops_per_client=3, dirs=24, file_size=8192)


def make_health(n_shards=2, policy=None):
    metrics = MetricsRegistry()
    return ClusterHealth(n_shards, metrics, lambda: 0.0, policy=policy), metrics


# -- health classification -------------------------------------------------------


class TestShardHealth:
    def test_device_gone_exceptions_fail_the_shard(self):
        for exc in (DeviceDegraded("dead"), PowerLoss("cut")):
            health, _ = make_health()
            health.observe_exception(0, exc)
            assert health.state(0) is HealthState.FAILED
            assert not health.readable(0)
            assert health.state(1) is HealthState.HEALTHY

    def test_read_only_exception_mirrors_the_shard_demotion(self):
        health, _ = make_health()
        health.observe_exception(0, ReadOnlyFileSystem("fs refused"))
        assert health.state(0) is HealthState.READ_ONLY
        assert health.readable(0) and not health.writable(0)

    def test_write_fault_budget_degrades_then_demotes_read_only(self):
        health, _ = make_health(policy=ShardHealthPolicy(max_write_faults=3))
        for _ in range(2):
            health.observe_exception(0, MediaWriteError("hard"))
            assert health.state(0) is HealthState.DEGRADED
        health.observe_exception(0, MediaWriteError("hard"))
        assert health.state(0) is HealthState.READ_ONLY
        assert health.readable(0)   # evacuation stays possible

    def test_read_fault_budget_fails_the_shard(self):
        health, _ = make_health(policy=ShardHealthPolicy(max_read_faults=2))
        health.observe_error(0, "hard read error at block 7", op="read")
        assert health.state(0) is HealthState.DEGRADED
        health.observe_error(0, "hard read error at block 9", op="read")
        assert health.state(0) is HealthState.FAILED

    def test_transient_faults_charge_the_surfacing_path(self):
        health, _ = make_health(policy=ShardHealthPolicy(max_write_faults=1))
        health.observe_exception(0, TransientDiskError("blip"), op="write")
        assert health.state(0) is HealthState.READ_ONLY

    def test_power_error_string_fails_regardless_of_path(self):
        health, _ = make_health()
        health.observe_error(1, "power loss mid-write", op="write")
        assert health.state(1) is HealthState.FAILED

    def test_states_are_monotonic(self):
        health, _ = make_health()
        assert health.mark(0, HealthState.FAILED, "dead")
        assert not health.mark(0, HealthState.DEGRADED, "trying to heal")
        assert health.state(0) is HealthState.FAILED

    def test_transitions_mirror_into_gauges_and_counter(self):
        health, metrics = make_health()
        assert metrics.gauge("cluster.health.s0").value == 0
        health.mark(0, HealthState.READ_ONLY, "demoted")
        health.mark(1, HealthState.DEGRADED, "wobbly")
        assert metrics.gauge("cluster.health.s0").value == \
            HealthState.READ_ONLY.value
        assert metrics.gauge("cluster.health.s1").value == \
            HealthState.DEGRADED.value
        assert metrics.counter("cluster.health.transitions").value == 2

    def test_log_merges_shards_in_time_order(self):
        metrics = MetricsRegistry()
        clock = [0.0]
        health = ClusterHealth(2, metrics, lambda: clock[0])
        clock[0] = 1.0
        health.mark(1, HealthState.DEGRADED, "first")
        clock[0] = 2.0
        health.mark(0, HealthState.FAILED, "second")
        log = health.log()
        assert [(t, sid) for t, sid, *_ in log] == [(1.0, 1), (2.0, 0)]
        assert log[1][2:] == ("HEALTHY", "FAILED", "second")


# -- health-aware routing --------------------------------------------------------


class TestHealthAwareRouting:
    def test_no_hook_is_byte_identical_to_healthy_hook(self):
        names = ["d%03d" % i for i in range(100)]
        for kind in (HashRouter, UtilizationRouter):
            blind, hooked = kind(4), kind(4)
            hooked.set_health(lambda sid: 0)
            assert [blind.place(n) for n in names] == \
                [hooked.place(n) for n in names]
            assert hooked.skips == 0

    def test_hash_ring_walks_past_sick_canonical_owners(self):
        router = HashRouter(4)
        victim = router.probe("newdir")   # canonical ring owner
        states = {victim: HealthState.READ_ONLY.value}
        router.set_health(lambda sid: states.get(sid, 0))
        owner = router.place("newdir")
        assert owner != victim
        assert router.skips == 1
        # sticky: healing the victim does not move the assignment
        states.clear()
        assert router.place("newdir") == owner

    def test_hash_falls_back_to_degraded_when_nothing_healthy(self):
        router = HashRouter(2)
        victim = router.probe("x")
        other = 1 - victim
        states = {victim: 1, other: 3}   # DEGRADED vs FAILED
        router.set_health(lambda sid: states[sid])
        assert router.place("x") == victim

    def test_routers_raise_when_no_shard_accepts(self):
        for kind in (HashRouter, UtilizationRouter):
            router = kind(2)
            router.set_health(lambda sid: 3)
            with pytest.raises(DeviceDegraded):
                router.place("doomed")

    def test_util_router_excludes_read_only_shards(self):
        router = UtilizationRouter(2)
        states = {0: HealthState.READ_ONLY.value, 1: 0}
        router.set_health(lambda sid: states[sid])
        assert all(router.place("d%d" % i) == 1 for i in range(4))
        assert router.skips > 0

    def test_util_router_spills_to_degraded_only_under_pressure(self):
        router = UtilizationRouter(2, degraded_pressure=4.0)
        states = {0: 0, 1: 1}   # shard 1 is DEGRADED
        router.set_health(lambda sid: states[sid])
        assert router.place("a") == 0   # idle cluster: healthy wins
        router.charge(0, ops=100)       # now load[0] > 4 * (load[1] + 1)
        assert router.place("b") == 1

    def test_pick_spare_respects_exclusion_and_health(self):
        router = UtilizationRouter(3)
        states = {0: 0, 1: 0, 2: HealthState.FAILED.value}
        router.set_health(lambda sid: states[sid])
        assert router.pick_spare("top", exclude=(0,)) == 1
        with pytest.raises(DeviceDegraded):
            router.pick_spare("top", exclude=(0, 1))

    def test_reassign_moves_an_assignment_and_counts_load(self):
        router = UtilizationRouter(2)
        assert router.place("a") == 0
        router.reassign("a", 1)
        assert router.assignments["a"] == 1
        assert router.load[1] >= 1
        with pytest.raises(InvalidArgument):
            router.reassign("a", 9)


# -- facade retry and redirect ---------------------------------------------------


def faulty_cluster(**kwargs):
    schedule = FaultSchedule()
    cluster = Cluster(n_shards=2, faults={0: schedule}, **kwargs)
    fs = cluster.fs
    fs.mkdir("/a")                       # util router: lands on shard 0
    fs.write_file("/a/f", b"x" * 8192)
    fs.sync()
    assert cluster.router.assignments["a"] == 0
    return cluster, schedule


class TestFacadeRetryAndRedirect:
    def test_retry_absorbs_a_hard_fault_within_budget(self):
        cluster, schedule = faulty_cluster()
        schedule.fail_writes_from(0)
        cluster.fs.write_file("/a/g", b"y" * 4096)   # no exception
        snap = cluster.metrics.snapshot()
        assert snap["cluster.retry.attempts"] >= 1
        assert snap["cluster.retry.absorbed"] >= 1
        assert snap.get("cluster.retry.exhausted", 0) == 0
        assert cluster.health.state(0) is HealthState.DEGRADED
        assert cluster.fs.read_file("/a/g") == b"y" * 4096

    def test_backoff_spends_simulated_time(self):
        cluster, schedule = faulty_cluster()
        schedule.fail_writes_from(0)
        before = cluster.now
        cluster.fs.write_file("/a/g", b"y" * 4096)
        assert cluster.now - before >= cluster.retry.delay(0)

    def test_exhaustion_against_a_demoted_shard_redirects(self):
        # One hard fault both exhausts the retry budget and demotes the
        # shard READ_ONLY, so the surfaced error must convert into an
        # evacuate-and-redirect rather than reaching the caller.
        cluster, schedule = faulty_cluster(
            retry=ClusterRetryPolicy(max_attempts=1),
            health_policy=ShardHealthPolicy(max_write_faults=1))
        schedule.fail_writes_from(0)
        cluster.fs.write_file("/a/g", b"y" * 8192)
        assert cluster.router.assignments["a"] == 1
        assert cluster.health.state(0) is HealthState.READ_ONLY
        snap = cluster.metrics.snapshot()
        assert snap["cluster.retry.exhausted"] == 1
        assert snap["cluster.retry.redirects"] == 1
        # both the pre-fault file and the redirected write are readable
        assert cluster.fs.read_file("/a/f") == b"x" * 8192
        assert cluster.fs.read_file("/a/g") == b"y" * 8192
        assert adopted_tops(cluster.shards[1].fs) == {"a": 0}

    def test_writes_against_a_read_only_shard_redirect(self):
        cluster, _ = faulty_cluster()
        cluster.health.mark(0, HealthState.READ_ONLY, "operator demotion")
        cluster.fs.write_file("/a/g", b"moved" * 100)
        assert cluster.router.assignments["a"] == 1
        assert cluster.metrics.snapshot()["cluster.retry.redirects"] == 1
        assert cluster.fs.read_file("/a/f") == b"x" * 8192
        assert cluster.fs.read_file("/a/g") == b"moved" * 100

    def test_new_top_on_a_read_only_shard_routes_elsewhere(self):
        cluster, _ = faulty_cluster()
        cluster.health.mark(0, HealthState.READ_ONLY, "demoted")
        cluster.fs.mkdir("/b")
        assert cluster.router.assignments["b"] == 1

    def test_descriptor_writes_surface_the_demotion_with_context(self):
        cluster, _ = faulty_cluster()
        fd = cluster.fs.open("/a/f")
        cluster.health.mark(0, HealthState.READ_ONLY, "demoted")
        with pytest.raises(ReadOnlyFileSystem) as info:
            cluster.fs.write(fd, b"z")
        assert info.value.shard == 0
        assert str(info.value).startswith("s0: ")

    def test_errors_carry_their_shard_context(self):
        cluster, _ = faulty_cluster()
        with pytest.raises(FileNotFound) as info:
            cluster.fs.read_file("/a/ghost")
        assert info.value.shard == 0
        assert str(info.value).startswith("s0: ")

    def test_root_listing_hides_failed_shards(self):
        cluster, _ = faulty_cluster()
        cluster.fs.mkdir("/b")   # lands on shard 1
        cluster.health.mark(0, HealthState.FAILED, "gone")
        assert cluster.fs.readdir("/") == ["b"]

    def test_backoff_refuses_while_events_are_pending(self):
        cluster, _ = faulty_cluster()
        cluster.loop.call_later(1.0, lambda: None)
        with pytest.raises(InvalidArgument):
            cluster.backoff(0.5)


# -- evacuation ------------------------------------------------------------------


def populated_pair():
    cluster = Cluster(n_shards=2)
    fs = cluster.fs
    fs.mkdir("/a")
    fs.mkdir("/a/deep")
    fs.write_file("/a/one", b"alpha" * 400)
    fs.write_file("/a/deep/two", b"beta" * 900)
    fs.sync()
    assert cluster.router.assignments["a"] == 0
    return cluster


class TestEvacuation:
    def test_evacuate_moves_every_byte_and_retires_the_shard(self):
        cluster = populated_pair()
        cluster.health.mark(0, HealthState.READ_ONLY, "demoted")
        reports = cluster.evacuate(0)
        assert [(r.top, r.src, r.dst) for r in reports] == [("a", 0, 1)]
        assert reports[0].files == 2
        assert cluster.router.assignments["a"] == 1
        assert cluster.health.state(0) is HealthState.FAILED
        dst = cluster.shards[1].fs
        assert dst.read_file("/a/one") == b"alpha" * 400
        assert dst.read_file("/a/deep/two") == b"beta" * 900
        assert adopted_tops(dst) == {"a": 0}
        snap = cluster.metrics.snapshot()
        assert snap["cluster.evac.subtrees"] == 1
        assert snap["cluster.evac.files"] == 2
        assert snap["cluster.evac.bytes"] == 400 * 5 + 900 * 4

    def test_facade_reads_find_the_adopted_copy(self):
        cluster = populated_pair()
        cluster.health.mark(0, HealthState.READ_ONLY, "demoted")
        cluster.evacuate(0)
        assert cluster.fs.read_file("/a/deep/two") == b"beta" * 900
        assert cluster.fs.readdir("/a") == ["deep", "one"]

    def test_recovery_clears_the_stale_source_copy(self):
        cluster = populated_pair()
        cluster.health.mark(0, HealthState.READ_ONLY, "demoted")
        cluster.evacuate(0)
        src = cluster.shards[0].fs
        assert src.exists("/a/one")   # read-only source kept its copy
        outcomes = cluster.recover()
        assert (0, "evac_source_cleared") in outcomes
        assert not src.exists("/a")
        assert adopted_tops(cluster.shards[1].fs) == {}
        assert cluster.recover() == []   # idempotent

    def test_rebuild_prefers_the_adopt_record_over_the_stale_source(self):
        cluster = populated_pair()
        cluster.health.mark(0, HealthState.READ_ONLY, "demoted")
        cluster.evacuate(0)
        # Before recovery both shards list /a; the adopt record on the
        # destination must break the tie toward the adopter.
        reborn = Cluster(
            filesystems=[shard.fs for shard in cluster.shards],
            router="util")
        assert reborn.rebuild_assignments()["a"] == 1

    def test_evacuate_unhealthy_drains_only_read_only_shards(self):
        cluster = populated_pair()
        assert cluster.evacuate_unhealthy() == []   # everything healthy
        cluster.health.mark(0, HealthState.READ_ONLY, "demoted")
        reports = cluster.evacuate_unhealthy()
        assert [r.top for r in reports] == ["a"]
        assert cluster.health.state(0) is HealthState.FAILED


# -- evacuation crash-point sweep ------------------------------------------------


def _sharded_pair():
    """Two CFFS shards on journaling fault proxies, under one cluster."""
    filesystems = []
    devices = []
    for _ in range(2):
        device = FaultyBlockDevice(BlockDevice(TEST_PROFILE),
                                   record_journal=True)
        config = CFFSConfig(blocks_per_cg=512, cache_blocks=512,
                            policy=MetadataPolicy.SYNC_METADATA)
        filesystems.append(CFFS.mkfs(device, config))
        devices.append(device)
    cluster = Cluster(filesystems=filesystems, router="util")
    return cluster, devices


class TestEvacuationCrashSweep:
    def test_every_media_write_boundary_keeps_exactly_one_copy(self):
        cluster, devices = _sharded_pair()
        fs = cluster.fs
        payloads = {"/a/one": b"survivor" * 600, "/a/two": b"also" * 250}
        fs.mkdir("/a")
        for path, data in sorted(payloads.items()):
            fs.write_file(path, data)
        fs.sync()
        assert cluster.router.assignments["a"] == 0

        base = [len(dev.journal) for dev in devices]
        order = []
        for sid, dev in enumerate(devices):
            dev.on_media_write = (
                lambda bno, data, sid=sid: order.append(sid))

        cluster.health.mark(0, HealthState.READ_ONLY, "demoted")
        cluster.evacuate(0)
        fs.sync()
        for dev in devices:
            dev.on_media_write = None
        assert len(order) > 0
        # Every copy and record lands on the destination; the source
        # sees at most metadata touches from its read path.
        assert 1 in set(order)

        outcomes = set()
        for k in range(len(order) + 1):
            prefix = order[:k]
            images = [dev.image_at(base[sid] + prefix.count(sid))
                      for sid, dev in enumerate(devices)]
            mounted = []
            for image in images:
                fsck_cffs(image, repair=True)
                report = fsck_cffs(image)
                assert report.pristine, (
                    "crash point %d unrepairable: %s"
                    % (k, "; ".join(report.errors + report.repairs)))
                mounted.append(CFFS.mount(image))
            recovered = Cluster(filesystems=mounted, router="util")
            for _, action in recovered.recover():
                outcomes.add(action)
            src_has = mounted[0].exists("/a")
            dst_has = mounted[1].exists("/a")
            assert src_has != dst_has, (
                "crash point %d/%d: subtree on %s"
                % (k, len(order),
                   "both shards" if src_has else "neither shard"))
            survivor = mounted[0] if src_has else mounted[1]
            for path, data in sorted(payloads.items()):
                assert survivor.read_file(path) == data, (
                    "crash point %d: %s corrupt on the surviving shard"
                    % (k, path))
            assert recovered.rebuild_assignments()["a"] == (0 if src_has
                                                            else 1)
            # Recovery converged: a second run is a no-op.
            assert recovered.recover() == []
        # The sweep crossed the adopt commit point: both directions.
        assert "evac_rolled_back" in outcomes
        assert "evac_rolled_forward" in outcomes
        assert "evac_source_cleared" in outcomes


# -- the chaos harness -----------------------------------------------------------


def chaos_config(**overrides):
    traffic = TrafficConfig(shards=4, seed=2026, **CHAOS_SMALL)
    kwargs = dict(traffic=traffic, fail_shard=1)
    kwargs.update(overrides)
    return ChaosConfig(**kwargs)


class TestChaosHarness:
    def test_write_storm_acceptance(self):
        result = run_cluster_chaos(chaos_config())
        assert result.verdict() == "PASS"
        assert result.final_states[1] == "FAILED"
        assert result.surviving_availability >= 0.95
        assert result.evacuated, "the victim never owned a subtree"
        assert result.verified_files == sum(r.files for r in result.evacuated)
        assert result.crc_mismatches == []
        assert result.stranded == 0
        # the victim demoted mid-run, not at the end
        assert any(sid == 1 and state == "READ_ONLY"
                   for _, sid, _, state, _ in result.health_log)

    def test_reports_are_byte_identical_across_runs(self):
        a = run_cluster_chaos(chaos_config())
        b = run_cluster_chaos(chaos_config())
        assert render_chaos(a) == render_chaos(b)
        assert (json.dumps(chaos_summary(a), sort_keys=True)
                == json.dumps(chaos_summary(b), sort_keys=True))

    def test_read_storm_is_absorbed_by_the_cache(self):
        # Warm data is cache-resident, so a read-storm at this scale
        # never surfaces a device read — the shard survives untouched.
        result = run_cluster_chaos(chaos_config(fail_op="read"))
        assert result.verdict() == "PASS"
        assert result.stranded == 0

    def test_summary_schema_is_valid_and_validator_bites(self):
        doc = chaos_summary(run_cluster_chaos(chaos_config()))
        assert validate_chaos_summary(doc) == []
        assert validate_chaos_summary({}) != []
        for mutate, fragment in [
            (lambda d: d.update(schema="repro-cluster-chaos/0"), "schema"),
            (lambda d: d.pop("evacuation"), "evacuation"),
            (lambda d: d.update(verdict="MAYBE"), "verdict"),
            (lambda d: d["availability"].update(surviving=1.5),
             "surviving"),
            (lambda d: d["evacuation"].update(files="many"),
             "evacuation.files"),
            (lambda d: d["health"].update(final=[]), "health.final"),
        ]:
            bad = json.loads(json.dumps(doc))
            mutate(bad)
            problems = validate_chaos_summary(bad)
            assert any(fragment in p for p in problems), (fragment, problems)

    def test_invalid_configs_are_rejected(self):
        with pytest.raises(InvalidArgument):
            run_cluster_chaos(chaos_config(fail_shard=7))
        with pytest.raises(InvalidArgument):
            run_cluster_chaos(chaos_config(fail_op="meteor"))
        with pytest.raises(InvalidArgument):
            run_cluster_chaos(chaos_config(warm_fraction=1.0))
        with pytest.raises(InvalidArgument):
            run_cluster_chaos(chaos_config(availability_floor=1.5))
        with pytest.raises(InvalidArgument):
            run_cluster_chaos(ChaosConfig(
                traffic=TrafficConfig(shards=1, **CHAOS_SMALL),
                fail_shard=0))


# -- fault spec parsing ----------------------------------------------------------


class TestParseFaultSpec:
    def test_parses_marks_rates_and_multiple_shards(self):
        out = parse_fault_spec(
            "1:write_fail_from=0;0:transient_rate=0.05,seed=7;"
            "2:read_fail_from=3", shards=4)
        assert sorted(out) == [0, 1, 2]
        assert out[1].write_fail_from == 0
        assert out[2].read_fail_from == 3
        assert out[0].write_fail_from is None

    def test_rejected_specs(self):
        for spec in [
            "",                          # empty
            "x:seed=1",                  # non-integer shard id
            "9:seed=1",                  # shard out of range
            "0:seed=1;0:seed=2",         # repeated shard
            "0:seed",                    # missing =
            "0:flux_capacitor=1",        # unknown key
            "0:transient_rate=lots",     # bad value
            "0:transient_rate=7.0",      # FaultSchedule rejects rate > 1
        ]:
            with pytest.raises(InvalidArgument):
                parse_fault_spec(spec, shards=2)
