"""Tests for the observability subsystem (``repro.obs``).

Covers the span model (nesting, attribute propagation, counters), the
metrics registry (bucket edges, kind conflicts, snapshots), all three
exporters against embedded goldens, the zero-overhead disabled path,
byte-identical determinism of exports across identical seeded runs, and
the paper-shaped acceptance check: a traced small-file read phase shows
C-FFS touching the disk layer at least 5x less often per file than the
conventional layout.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.clock import SimClock
from repro.errors import InvalidArgument
from repro.obs import Histogram, MetricsRegistry, Tracer
from repro.obs.export import (
    FORMATS,
    export,
    export_chrome,
    export_flame,
    export_jsonl,
)
from repro.workloads import run_smallfile
from tests.conftest import make_cffs, make_ffs


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """A test that dies mid-install must not poison its neighbours."""
    yield
    obs.uninstall()


# -- spans --------------------------------------------------------------------


class TestSpans:
    def test_nesting_parents_and_timestamps(self):
        clock = SimClock()
        t = Tracer(clock=clock)
        with t.span("vfs", "read", path="/f") as outer:
            clock.advance(0.5)
            with t.span("cache", "miss", bno=7) as inner:
                clock.advance(0.25)
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.start == pytest.approx(0.5)
        assert inner.duration == pytest.approx(0.25)
        assert outer.duration == pytest.approx(0.75)
        # Finished spans land in completion order: inner closes first.
        assert t.spans == [inner, outer]
        assert t.current is None

    def test_context_attrs_propagate_explicit_wins(self):
        t = Tracer()
        with t.context(phase="read", client=3):
            with t.span("vfs", "open") as inherited:
                pass
            with t.span("vfs", "open", client=9) as explicit:
                pass
        with t.span("vfs", "open") as outside:
            pass
        assert inherited.attrs == {"phase": "read", "client": 3}
        assert explicit.attrs == {"phase": "read", "client": 9}
        assert outside.attrs == {}

    def test_record_parents_under_open_span(self):
        t = Tracer()
        with t.span("vfs", "read") as outer:
            rec = t.record("disk", "read", 1.0, 2.5, lba=8)
        orphan = t.record("disk", "write", 3.0, 4.0)
        assert rec.parent_id == outer.span_id
        assert rec.start == 1.0
        assert rec.duration == 1.5
        assert rec.attrs == {"lba": 8}
        assert orphan.parent_id is None

    def test_span_local_counters(self):
        t = Tracer()
        with t.span("vfs", "read") as sp:
            t.incr("bytes", 100)
            sp.incr("bytes", 28)
            sp.incr("blocks")
        assert sp.counters == {"bytes": 128, "blocks": 1}
        t.incr("ignored")  # no open span: silently dropped

    def test_out_of_order_close_raises(self):
        t = Tracer()
        a = t.span("vfs", "a")
        b = t.span("vfs", "b")
        a.__enter__()
        b.__enter__()
        with pytest.raises(InvalidArgument):
            a.__exit__(None, None, None)

    def test_per_span_clock_override(self):
        main, other = SimClock(), SimClock()
        other.advance(10.0)
        t = Tracer(clock=main)
        with t.span("engine", "capture", clock=other) as sp:
            other.advance(1.0)
        assert sp.start == pytest.approx(10.0)
        assert sp.end == pytest.approx(11.0)


# -- disabled path ------------------------------------------------------------


class TestDisabledPath:
    def test_null_span_is_the_shared_singleton(self):
        assert obs.active() is None
        assert not obs.enabled()
        s1 = obs.span("vfs", "read", path="/x")
        s2 = obs.span("disk", "write")
        assert s1 is s2
        assert s1 is obs.NULL_SPAN

    def test_null_span_accepts_the_full_span_api(self):
        with obs.span("vfs", "read") as sp:
            assert sp.set(path="/x") is sp
            sp.incr("bytes", 4096)
        obs.record("disk", "read", 0.0, 1.0, lba=1)
        obs.incr("cache.hits")
        obs.count("engine.events")

    def test_install_routes_uninstall_restores(self):
        clock = SimClock()
        t = obs.install(Tracer(clock=clock))
        assert obs.active() is t
        with obs.span("vfs", "read"):
            clock.advance(1.0)
            obs.incr("bytes", 10)
        obs.count("events", 3)
        assert obs.uninstall() is t
        assert obs.active() is None
        assert obs.span("vfs", "read") is obs.NULL_SPAN
        assert len(t.spans) == 1
        assert t.spans[0].duration == pytest.approx(1.0)
        assert t.spans[0].counters == {"bytes": 10}
        assert t.registry.counter("events").value == 3


# -- metrics ------------------------------------------------------------------


class TestMetrics:
    def test_histogram_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram("h", (1, 2, 4))
        for value in (0, 1, 1.5, 2, 3, 4, 5):
            h.observe(value)
        assert h.counts == [2, 2, 2]
        assert h.overflow == 1
        assert h.total == 7
        assert h.sum == pytest.approx(16.5)
        assert h.as_pairs() == [(1, 2), (2, 2), (4, 2), (float("inf"), 1)]

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(InvalidArgument):
            Histogram("h", ())
        with pytest.raises(InvalidArgument):
            Histogram("h", (1, 1, 2))
        with pytest.raises(InvalidArgument):
            Histogram("h", (4, 2))

    def test_registry_idempotent_accessors(self):
        reg = MetricsRegistry()
        assert reg.counter("disk.reads") is reg.counter("disk.reads")
        assert reg.histogram("lat", (1, 2)) is reg.histogram("lat")
        with pytest.raises(InvalidArgument):
            reg.histogram("nonexistent")  # needs buckets on first use

    def test_registry_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(InvalidArgument):
            reg.gauge("x")
        with pytest.raises(InvalidArgument):
            reg.histogram("x", (1,))

    def test_snapshot_sorted_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.gauge("a.depth").set(5)
        h = reg.histogram("c.lat", (1, 10))
        h.observe(0.5)
        h.observe(99)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["b.count"] == 2
        assert snap["a.depth"] == 5
        assert snap["c.lat"] == {
            "buckets": {"1": 1, "10": 0}, "+inf": 1, "total": 2, "sum": 99.5,
        }
        reg.reset()
        snap = reg.snapshot()
        assert snap["b.count"] == 0
        assert snap["c.lat"]["total"] == 0


# -- exporter goldens ---------------------------------------------------------


def _golden_tracer() -> Tracer:
    clock = SimClock()
    t = Tracer(clock=clock)
    with t.span("vfs", "read", path="/a", client=1):
        clock.advance(0.001)
        with t.span("cache", "miss", bno=7) as miss:
            miss.incr("blocks", 2)
            clock.advance(0.002)
            t.record("disk", "read", clock.now, clock.now + 0.0015, lba=64)
            clock.advance(0.0015)
        clock.advance(0.0005)
    return t


CHROME_GOLDEN = (
    '{"displayTimeUnit":"ms","otherData":{"clock":"simulated","spans":3},'
    '"traceEvents":['
    '{"args":{"name":"repro (simulated time)"},"name":"process_name",'
    '"ph":"M","pid":1},'
    '{"args":{"client":1,"path":"/a"},"cat":"vfs","dur":5000.0,'
    '"name":"vfs.read","ph":"X","pid":1,"tid":1,"ts":0.0},'
    '{"args":{"#blocks":2,"bno":7},"cat":"cache","dur":3500.0,'
    '"name":"cache.miss","ph":"X","pid":1,"tid":0,"ts":1000.0},'
    '{"args":{"lba":64},"cat":"disk","dur":1500.0,'
    '"name":"disk.read","ph":"X","pid":1,"tid":0,"ts":3000.0}]}\n'
)

JSONL_GOLDEN = (
    '{"attrs":{"client":1,"path":"/a"},"counters":{},"dur_us":5000.0,'
    '"id":0,"layer":"vfs","op":"read","parent":null,"start_us":0.0}\n'
    '{"attrs":{"bno":7},"counters":{"blocks":2},"dur_us":3500.0,'
    '"id":1,"layer":"cache","op":"miss","parent":0,"start_us":1000.0}\n'
    '{"attrs":{"lba":64},"counters":{},"dur_us":1500.0,'
    '"id":2,"layer":"disk","op":"read","parent":1,"start_us":3000.0}\n'
)

FLAME_GOLDEN = (
    "vfs.read 1500\n"
    "vfs.read;cache.miss 2000\n"
    "vfs.read;cache.miss;disk.read 1500\n"
)


class TestExportGoldens:
    def test_chrome_golden(self):
        assert export_chrome(_golden_tracer()) == CHROME_GOLDEN

    def test_jsonl_golden(self):
        assert export_jsonl(_golden_tracer()) == JSONL_GOLDEN

    def test_flame_golden_self_time(self):
        # Self time: vfs.read 5000 - 3500 (child) = 1500; cache.miss
        # 3500 - 1500 = 2000; disk.read is a leaf, 1500.
        assert export_flame(_golden_tracer()) == FLAME_GOLDEN

    def test_unknown_format_rejected(self):
        with pytest.raises(InvalidArgument):
            export(_golden_tracer(), "pprof")

    def test_write_export_with_metrics(self, tmp_path):
        t = _golden_tracer()
        t.registry.counter("disk.reads").inc(7)
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        obs.write_export(t, str(trace_path), "chrome",
                         metrics_path=str(metrics_path))
        assert trace_path.read_text() == CHROME_GOLDEN
        assert '"disk.reads": 7' in metrics_path.read_text()


# -- traced workload runs -----------------------------------------------------


def _traced_smallfile(fs, n_files: int):
    tracer = Tracer(clock=fs.cache.device.clock)
    obs.install(tracer)
    try:
        run_smallfile(fs, n_files=n_files, file_size=1024)
    finally:
        obs.uninstall()
    return tracer


def _disk_spans_in_phase(tracer: Tracer, phase: str):
    window = next(s for s in tracer.spans
                  if s.layer == "workload" and s.op == phase)
    return [s for s in tracer.spans
            if s.layer == "disk"
            and window.start <= s.start and s.end <= window.end]


class TestTracedRuns:
    def test_trace_covers_every_layer(self):
        tracer = _traced_smallfile(make_cffs(), n_files=20)
        layers = {s.layer for s in tracer.spans}
        assert {"workload", "vfs", "fs", "cache", "disk"} <= layers

    def test_identical_runs_export_byte_identical(self):
        t1 = _traced_smallfile(make_cffs(), n_files=25)
        t2 = _traced_smallfile(make_cffs(), n_files=25)
        for fmt in FORMATS:
            assert export(t1, fmt) == export(t2, fmt), fmt

    def test_cffs_needs_5x_fewer_disk_spans_per_file_on_cold_reads(self):
        # The paper's table 4-3: ~1.07 requests/file conventional vs
        # ~0.11 for C-FFS in the cold read phase — about a 10x drop.
        # The trace must show the same structure: disk-layer spans
        # inside the read-phase window, per file, at least 5x apart.
        n_files = 100
        ffs_trace = _traced_smallfile(make_ffs(), n_files=n_files)
        cffs_trace = _traced_smallfile(make_cffs(), n_files=n_files)
        ffs_reads = len(_disk_spans_in_phase(ffs_trace, "read"))
        cffs_reads = len(_disk_spans_in_phase(cffs_trace, "read"))
        assert cffs_reads > 0
        assert ffs_reads / cffs_reads >= 5.0, (
            "disk spans per file: ffs=%.2f cffs=%.2f"
            % (ffs_reads / n_files, cffs_reads / n_files))
