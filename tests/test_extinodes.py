"""Tests for the externalized inode file internals."""

import pytest

from repro.blockdev.device import BLOCK_SIZE
from repro.core.extinodes import SLOTS_PER_BLOCK
from repro.core.inode import CNode, LOC_EXT
from repro.core import layout
from repro.errors import FileNotFound


def fresh_node(fs, mode=layout.MODE_FILE) -> CNode:
    node = CNode(fs._next_fileid())
    node.init_as(mode, gen=1, mtime=0.0)
    return node


class TestAllocation:
    def test_first_allocation_grows_table(self, cffs):
        assert cffs.sb["ext_size"] == 0
        node = fresh_node(cffs)
        inum = cffs.ext.allocate(node, sync=True)[0]
        assert inum == 1
        assert cffs.sb["ext_size"] == BLOCK_SIZE
        assert node.loc == (LOC_EXT, 1)

    def test_slots_fill_before_growing(self, cffs):
        inums = [cffs.ext.allocate(fresh_node(cffs), sync=False)[0]
                 for _ in range(SLOTS_PER_BLOCK)]
        assert len(set(inums)) == SLOTS_PER_BLOCK
        assert cffs.sb["ext_size"] == BLOCK_SIZE
        extra = cffs.ext.allocate(fresh_node(cffs), sync=False)[0]
        assert cffs.sb["ext_size"] == 2 * BLOCK_SIZE
        assert extra == SLOTS_PER_BLOCK + 1

    def test_get_roundtrip(self, cffs):
        node = fresh_node(cffs)
        node.size = 777
        node.direct[0] = 42
        inum = cffs.ext.allocate(node, sync=True)[0]
        back = cffs.ext.get(inum)
        assert back.fileid == node.fileid
        assert back.size == 777
        assert back.direct[0] == 42
        assert back.loc == (LOC_EXT, inum)

    def test_get_free_slot_raises(self, cffs):
        cffs.ext.allocate(fresh_node(cffs), sync=False)[0]  # slot 1 used
        with pytest.raises(FileNotFound):
            cffs.ext.get(2)  # slot exists in the grown block but is free

    def test_get_out_of_range(self, cffs):
        with pytest.raises(FileNotFound):
            cffs.ext.get(1)  # table empty

    def test_free_and_reuse(self, cffs):
        a = cffs.ext.allocate(fresh_node(cffs), sync=False)[0]
        cffs.ext.free(a, sync=False)
        b = cffs.ext.allocate(fresh_node(cffs), sync=False)[0]
        assert b == a

    def test_free_list_rebuilt_after_drop(self, cffs):
        inums = [cffs.ext.allocate(fresh_node(cffs), sync=False)[0] for _ in range(5)]
        cffs.ext.free(inums[2], sync=False)
        cffs.sync()
        cffs.ext.drop_hints()
        # The scan (timed) must rediscover the free slot.
        again = cffs.ext.allocate(fresh_node(cffs), sync=False)[0]
        assert again == inums[2]

    def test_table_never_shrinks(self, cffs):
        inums = [cffs.ext.allocate(fresh_node(cffs), sync=False)[0]
                 for _ in range(SLOTS_PER_BLOCK + 1)]
        for inum in inums:
            cffs.ext.free(inum, sync=False)
        assert cffs.sb["ext_size"] == 2 * BLOCK_SIZE  # paper: does not shrink

    def test_store_updates_in_place(self, cffs):
        node = fresh_node(cffs)
        inum = cffs.ext.allocate(node, sync=True)[0]
        node.size = 123456
        cffs.ext.store(inum, node, sync=False)
        assert cffs.ext.get(inum).size == 123456

    def test_capacity_property(self, cffs):
        assert cffs.ext.capacity == 0
        cffs.ext.allocate(fresh_node(cffs), sync=False)[0]
        assert cffs.ext.capacity == SLOTS_PER_BLOCK
