"""Tests for the crash-consistency subsystem: the write-ahead journal
(log format, group commit, replay) and the soft-updates dependency
tracker.

The integration claims — every crash point recovers under the journal
policy, fsck replays before its walk — live in test_faultsim.py and
test_crash_consistency.py; this file covers the subsystem itself:
record formats, torn-tail handling, replay idempotence, the
fast-remount speedup, and the tracker's ordering decisions.
"""

import pytest

from repro.blockdev.device import BLOCK_SIZE, BlockDevice
from repro.cache.policy import MetadataPolicy
from repro.core.filesystem import CFFS, CFFSConfig
from repro.core import layout as clayout
from repro.disk.profiles import SEAGATE_ST31200
from repro.errors import JournalCorrupt, ReplayError
from repro.faults.harness import FAULTSIM_PROFILE
from repro.ffs.filesystem import FFS, FFSConfig
from repro.fsck import fsck_cffs, timed_fsck
from repro.journal import (
    SoftDepTracker,
    attach_pipeline,
    default_journal_blocks,
    describe_journal,
    replay_journal,
    scan_journal,
    timed_replay,
)
from repro.journal import wal


def block(tag: int) -> bytes:
    return bytes([tag % 256]) * BLOCK_SIZE


class TestLogFormat:
    def test_header_roundtrip(self):
        raw = wal.pack_header(128, 42)
        assert len(raw) == BLOCK_SIZE
        assert wal.unpack_header(raw) == {"nblocks": 128, "checkpoint_seq": 42}

    def test_header_crc_rejected(self):
        raw = bytearray(wal.pack_header(128, 42))
        raw[10] ^= 0xFF
        assert wal.unpack_header(bytes(raw)) is None

    def test_header_wrong_magic(self):
        assert wal.unpack_header(bytes(BLOCK_SIZE)) is None

    def test_descriptor_roundtrip(self):
        raw = wal.pack_descriptor(7, [3, 99, 1000])
        assert wal.parse_descriptor(raw) == (7, [3, 99, 1000])

    def test_descriptor_crc_rejected(self):
        raw = bytearray(wal.pack_descriptor(7, [3, 99]))
        raw[6] ^= 1
        assert wal.parse_descriptor(bytes(raw)) is None

    def test_commit_roundtrip(self):
        crc = wal.extent_crc([block(1), block(2)])
        raw = wal.pack_commit(9, 2, crc)
        assert wal.parse_commit(raw) == (9, 2, crc)

    def test_zeroed_block_is_neither(self):
        zero = bytes(BLOCK_SIZE)
        assert wal.parse_descriptor(zero) is None
        assert wal.parse_commit(zero) is None

    def test_default_region_clamps(self):
        assert default_journal_blocks(100) == 32          # floor
        assert default_journal_blocks(64 * 500) == 500    # ~1.5%
        assert default_journal_blocks(10 ** 7) == 1024    # ceiling

    def test_format_too_small_rejected(self):
        device = BlockDevice(FAULTSIM_PROFILE)
        with pytest.raises(JournalCorrupt):
            wal.Journal.format(device, 100, wal.MIN_JOURNAL_BLOCKS - 1)


def write_txn(device, pos: int, seq: int, bnos, images, good_commit=True):
    """Hand-write one transaction record at log position ``pos``."""
    device.poke_block(pos, wal.pack_descriptor(seq, bnos))
    for i, image in enumerate(images):
        device.poke_block(pos + 1 + i, image)
    crc = wal.extent_crc(images) if good_commit else 0xDEADBEEF
    device.poke_block(pos + 1 + len(images), wal.pack_commit(seq, len(images), crc))
    return pos + len(images) + 2


class TestReplay:
    START, NBLOCKS = 200, 64

    def fresh_log(self):
        device = BlockDevice(FAULTSIM_PROFILE)
        device.poke_block(self.START, wal.pack_header(self.NBLOCKS, 0))
        return device

    def test_committed_tail_applied(self):
        device = self.fresh_log()
        pos = write_txn(device, self.START + 1, 1, [5, 6], [block(5), block(6)])
        write_txn(device, pos, 2, [7], [block(7)])
        stats = replay_journal(device, self.START, self.NBLOCKS)
        assert (stats.txns, stats.blocks, stats.discarded) == (2, 3, 0)
        assert device.peek_block(5) == block(5)
        assert device.peek_block(7) == block(7)
        header = wal.unpack_header(device.peek_block(self.START))
        assert header["checkpoint_seq"] == 2

    def test_replay_idempotent(self):
        """Replaying twice leaves a byte-identical image: the first
        replay advances the checkpoint, the second applies nothing."""
        device = self.fresh_log()
        write_txn(device, self.START + 1, 1, [5, 6], [block(5), block(6)])
        replay_journal(device, self.START, self.NBLOCKS)
        before = dict(device._blocks)
        again = replay_journal(device, self.START, self.NBLOCKS)
        assert again.txns == 0 and again.blocks == 0
        assert dict(device._blocks) == before

    def test_torn_commit_discarded(self):
        """A transaction whose commit record fails its CRC never
        reaches the home locations."""
        device = self.fresh_log()
        pos = write_txn(device, self.START + 1, 1, [5], [block(5)])
        write_txn(device, pos, 2, [6], [block(6)], good_commit=False)
        stats = replay_journal(device, self.START, self.NBLOCKS)
        assert (stats.txns, stats.discarded) == (1, 1)
        assert device.peek_block(5) == block(5)
        assert device.peek_block(6) != block(6)

    def test_missing_commit_discarded(self):
        device = self.fresh_log()
        device.poke_block(self.START + 1, wal.pack_descriptor(1, [5]))
        device.poke_block(self.START + 2, block(5))
        stats = replay_journal(device, self.START, self.NBLOCKS)
        assert stats.txns == 0 and stats.discarded == 1
        assert device.peek_block(5) != block(5)

    def test_stale_seq_stops_scan(self):
        """Records at or before the checkpoint are leftovers from
        before the head reset, never replayed."""
        device = BlockDevice(FAULTSIM_PROFILE)
        device.poke_block(self.START, wal.pack_header(self.NBLOCKS, 7))
        write_txn(device, self.START + 1, 7, [5], [block(5)])
        scan = scan_journal(device, self.START, self.NBLOCKS)
        assert scan.replayable == []

    def test_target_outside_volume_rejected(self):
        device = self.fresh_log()
        write_txn(device, self.START + 1, 1, [device.total_blocks + 5],
                  [block(1)])
        with pytest.raises(ReplayError):
            replay_journal(device, self.START, self.NBLOCKS)

    def test_target_inside_log_rejected(self):
        device = self.fresh_log()
        write_txn(device, self.START + 1, 1, [self.START + 3], [block(1)])
        with pytest.raises(ReplayError):
            replay_journal(device, self.START, self.NBLOCKS)

    def test_bad_header_raises(self):
        device = BlockDevice(FAULTSIM_PROFILE)
        with pytest.raises(JournalCorrupt):
            scan_journal(device, self.START, self.NBLOCKS)

    def test_no_region_is_noop(self):
        device = BlockDevice(FAULTSIM_PROFILE)
        assert replay_journal(device, 0, 0).txns == 0
        assert timed_replay(device, 0, 0).txns == 0
        assert "no journal region" in describe_journal(device, 0, 0)

    def test_describe_lists_txns(self):
        device = self.fresh_log()
        pos = write_txn(device, self.START + 1, 1, [5, 6], [block(5), block(6)])
        write_txn(device, pos, 2, [7], [block(7)], good_commit=False)
        text = describe_journal(device, self.START, self.NBLOCKS)
        assert "committed" in text and "TORN" in text


class TestSoftDepTracker:
    def test_untracked_block_writes_through(self):
        tracker = SoftDepTracker()
        assert tracker.prepare(10, block(1)) == (block(1), True)

    def test_dependent_write_deferred(self):
        """A directory entry (block 20) requiring an inode write
        (block 10) is deferred until the inode is durable."""
        tracker = SoftDepTracker()
        ino = tracker.record(10, block(1))
        tracker.record(20, block(2), requires=(ino,))
        assert tracker.prepare(20, block(2)) is None      # inode not home
        assert not tracker.ready(20)
        image, clean = tracker.prepare(10, block(1))
        assert clean
        tracker.committed([10])
        assert tracker.is_durable(ino)
        assert tracker.prepare(20, block(2)) == (block(2), True)

    def test_rollback_to_safe_prefix(self):
        """Version 0 has no requirements, version 1 does: the flush
        writes the version-0 image (rolled back) and keeps the block
        dirty for roll-forward."""
        tracker = SoftDepTracker()
        other = tracker.record(10, block(1))
        tracker.record(20, block(2))                      # v0, safe
        tracker.record(20, block(3), requires=(other,))   # v1, blocked
        image, clean = tracker.prepare(20, b"cache-content")
        assert image == block(2) and not clean
        tracker.committed([20])
        # After the prerequisite lands, the current content is safe.
        tracker.prepare(10, block(1))
        tracker.committed([10])
        assert tracker.prepare(20, b"cache-content") == (b"cache-content", True)

    def test_gate_blocks_freed_block_reuse(self):
        tracker = SoftDepTracker()
        clear = tracker.record(10, block(1))
        tracker.gate(55, (clear,))
        assert tracker.prepare(55, block(9)) is None      # pointer not cleared
        tracker.prepare(10, block(1))
        tracker.committed([10])
        assert tracker.prepare(55, block(9)) == (block(9), True)

    def test_forgotten_is_vacuous_durability(self):
        tracker = SoftDepTracker()
        token = tracker.record(10, block(1))
        tracker.record(20, block(2), requires=(token,))
        tracker.forgotten(10)
        assert tracker.is_durable(token)
        assert tracker.prepare(20, block(2)) == (block(2), True)

    def test_transitive_chain_converges(self):
        """a <- b <- c drains in recording order over repeated passes —
        the topological-progress argument."""
        tracker = SoftDepTracker()
        a = tracker.record(1, block(1))
        b = tracker.record(2, block(2), requires=(a,))
        tracker.record(3, block(3), requires=(b,))
        order = []
        for _ in range(5):
            for bno in (3, 2, 1):  # worst-case pass order
                if bno in order:
                    continue  # already drained; tracking ended
                res = tracker.prepare(bno, block(bno))
                if res is not None:
                    tracker.committed([bno])
                    order.append(bno)
            if len(order) == 3:
                break
        assert order == [1, 2, 3]


class TestAttachPipeline:
    def test_journal_without_region_rejected(self):
        fs = CFFS.mkfs(BlockDevice(FAULTSIM_PROFILE),
                       CFFSConfig(blocks_per_cg=512, cache_blocks=256))
        with pytest.raises(JournalCorrupt):
            attach_pipeline(fs.cache, MetadataPolicy.JOURNAL_METADATA)

    def test_sync_gets_no_pipeline(self):
        fs = CFFS.mkfs(BlockDevice(FAULTSIM_PROFILE),
                       CFFSConfig(blocks_per_cg=512, cache_blocks=256))
        assert fs.cache.write_pipeline is None

    def test_softdep_gets_tracker(self):
        fs = CFFS.mkfs(BlockDevice(FAULTSIM_PROFILE), CFFSConfig(
            blocks_per_cg=512, cache_blocks=256,
            policy=MetadataPolicy.DELAYED_METADATA))
        assert isinstance(fs.cache.write_pipeline, SoftDepTracker)

    def test_journal_gets_journal(self):
        fs = CFFS.mkfs(BlockDevice(FAULTSIM_PROFILE), CFFSConfig(
            blocks_per_cg=512, cache_blocks=256,
            policy=MetadataPolicy.JOURNAL_METADATA))
        assert isinstance(fs.cache.write_pipeline, wal.Journal)


def journal_fs(cls, config_cls, n_files=30, profile=FAULTSIM_PROFILE):
    """A synced journal-policy file system with a populated tree."""
    fs = cls.mkfs(BlockDevice(profile), config_cls(
        blocks_per_cg=512, cache_blocks=512,
        policy=MetadataPolicy.JOURNAL_METADATA))
    fs.mkdir("/d")
    for i in range(n_files):
        fs.write_file("/d/f%03d" % i, b"x%04d" % i * 100)
    fs.sync()
    return fs


class TestJournaledFileSystems:
    @pytest.mark.parametrize("cls,config_cls", [(CFFS, CFFSConfig),
                                                (FFS, FFSConfig)])
    def test_remount_after_clean_sync(self, cls, config_cls):
        fs = journal_fs(cls, config_cls, n_files=10)
        back = cls.mount(fs.device)
        assert back.read_file("/d/f003") == b"x0003" * 100

    def test_mkfs_reserves_region_only_for_journal(self):
        sync_fs = CFFS.mkfs(BlockDevice(FAULTSIM_PROFILE),
                            CFFSConfig(blocks_per_cg=512, cache_blocks=256))
        jrnl_fs = journal_fs(CFFS, CFFSConfig, n_files=1)
        sb_sync = clayout.unpack_superblock(sync_fs.device.peek_block(0))
        sb_jrnl = clayout.unpack_superblock(jrnl_fs.device.peek_block(0))
        assert sb_sync["journal_start"] == 0
        assert sb_jrnl["journal_start"] > 0
        assert sb_jrnl["journal_blocks"] >= wal.MIN_JOURNAL_BLOCKS
        # The region costs cylinder groups, never the replica slot.
        assert sb_jrnl["n_cgs"] <= sb_sync["n_cgs"]

    def test_synced_log_is_checkpointed(self):
        fs = journal_fs(CFFS, CFFSConfig, n_files=5)
        sb = clayout.unpack_superblock(fs.device.peek_block(0))
        scan = scan_journal(fs.device, sb["journal_start"],
                            sb["journal_blocks"])
        assert scan.replayable == []
        assert scan.checkpoint_seq > 0  # commits happened, then homed


def crash_after_last_log_write(n_files=40):
    """A power-cut image cut immediately after the last write into the
    log region — committed transactions present, home writes not."""
    from repro.faults.harness import run_journaled_workload

    device, checkpoints = run_journaled_workload(
        "cffs", MetadataPolicy.JOURNAL_METADATA, n_files=n_files)
    sb = clayout.unpack_superblock(device.peek_block(0))
    start, nblocks = sb["journal_start"], sb["journal_blocks"]
    log_writes = [i for i, (bno, _) in enumerate(device.journal)
                  if start < bno < start + nblocks]
    assert log_writes, "workload never wrote the log"
    k = log_writes[-1] + 1
    return device.image_at(k), start, nblocks, checkpoints, k


class TestCrashImageReplay:
    def test_crash_image_has_pending_txns(self):
        image, start, nblocks, _, _ = crash_after_last_log_write()
        scan = scan_journal(image, start, nblocks)
        assert scan.replayable

    def test_replay_idempotent_on_real_log(self):
        image, start, nblocks, _, _ = crash_after_last_log_write()
        replay_journal(image, start, nblocks)
        before = dict(image._blocks)
        replay_journal(image, start, nblocks)
        assert dict(image._blocks) == before

    def test_replayed_image_checks_clean_and_remounts(self):
        image, start, nblocks, checkpoints, k = crash_after_last_log_write()
        report = fsck_cffs(image, repair=True)
        assert fsck_cffs(image).pristine, report.render()
        fs = CFFS.mount(image)
        durable = [c for c in checkpoints if c.journal_len <= k][-1]
        final = checkpoints[-1].files
        for path, body in durable.files.items():
            if final.get(path) == body:
                assert fs.read_file(path) == body


class TestFastRemount:
    def test_replay_beats_fsck_10x(self, tmp_path):
        """The tentpole speed claim: journal replay on an aged image is
        at least 10x faster (simulated time) than the full fsck walk."""
        fs = journal_fs(CFFS, CFFSConfig, n_files=120,
                        profile=SEAGATE_ST31200)
        for i in range(0, 120, 3):
            fs.unlink("/d/f%03d" % i)           # age: holes in groups
        for i in range(120, 200):
            fs.write_file("/d/g%03d" % i, b"y" * 2048)
        fs.sync()
        image = str(tmp_path / "journal_aged.img")
        fs.device.save_image(image)
        sb = clayout.unpack_superblock(fs.device.peek_block(0))

        replay_dev = BlockDevice.load_image(image)
        stats = timed_replay(replay_dev, sb["journal_start"],
                             sb["journal_blocks"])

        fsck_dev = BlockDevice.load_image(image)
        _report, walk_seconds = timed_fsck(fsck_dev, fsck_cffs)

        assert stats.elapsed > 0.0
        assert walk_seconds >= 10.0 * stats.elapsed, (
            "replay %.6fs vs fsck walk %.6fs" % (stats.elapsed, walk_seconds))

    def test_mount_charges_replay_to_clock(self):
        """Mounting a crash image replays on the timed path."""
        image, _start, _nblocks, _, _ = crash_after_last_log_write(n_files=20)
        before = image.clock.now
        CFFS.mount(image)
        assert image.clock.now > before
