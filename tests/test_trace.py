"""Tests for trace record/replay."""

import pytest

from repro.errors import InvalidArgument
from repro.workloads.trace import Trace, TraceOp, TracingFileSystem, replay
from tests.conftest import make_cffs, make_ffs


class TestTraceFormat:
    def test_roundtrip_text(self):
        trace = Trace()
        trace.append("mkdir", "/d")
        trace.append("write", "/d/f", 0, 1024)
        trace.append("rename", "/d/f", "/d/g")
        trace.append("sync")
        text = trace.dumps()
        back = Trace.loads(text)
        assert [op.render() for op in back.ops] == [op.render() for op in trace.ops]

    def test_comments_and_blanks_ignored(self):
        trace = Trace.loads("# header\n\nmkdir /d\n")
        assert len(trace) == 1

    def test_unknown_op_rejected(self):
        with pytest.raises(InvalidArgument):
            TraceOp.parse("teleport /a /b")

    def test_wrong_arity_rejected(self):
        with pytest.raises(InvalidArgument):
            TraceOp.parse("mkdir /a /b")

    def test_numeric_args_parsed(self):
        op = TraceOp.parse("write /f 100 200")
        assert op.args == ("/f", 100, 200)


class TestRecording:
    def test_operations_recorded_in_order(self):
        fs = TracingFileSystem(make_cffs())
        fs.mkdir("/d")
        fs.write_file("/d/a", b"x" * 100)
        fs.read_file("/d/a")
        fs.rename("/d/a", "/d/b")
        fs.unlink("/d/b")
        ops = [op.op for op in fs.trace.ops]
        assert ops == ["mkdir", "write", "read", "rename", "unlink"]

    def test_recorded_fs_still_works(self):
        fs = TracingFileSystem(make_cffs())
        fs.mkdir("/d")
        fs.write_file("/d/a", b"hello")
        assert fs.read_file("/d/a") == b"hello"
        assert fs.stat("/d/a").size == 5  # passthrough attribute

    def test_failed_operation_not_recorded(self):
        from repro.errors import FileNotFound

        fs = TracingFileSystem(make_cffs())
        with pytest.raises(FileNotFound):
            fs.unlink("/missing")
        assert len(fs.trace) == 0


class TestReplay:
    def record_workload(self):
        fs = TracingFileSystem(make_cffs())
        fs.mkdir("/proj")
        for i in range(20):
            fs.write_file("/proj/f%02d" % i, b"d" * (500 + i * 37))
        fs.sync()
        for i in range(20):
            fs.read_file("/proj/f%02d" % i)
        for i in range(0, 20, 2):
            fs.unlink("/proj/f%02d" % i)
        fs.sync()
        return fs.trace

    def test_replay_reproduces_state(self):
        trace = self.record_workload()
        target = make_cffs()
        replay(trace, target)
        names = target.readdir("/proj")
        assert len(names) == 10
        assert target.stat("/proj/f01").size == 537

    def test_replay_across_configurations(self):
        """One trace measured against the whole grid."""
        trace = self.record_workload()
        conv = replay(trace, make_cffs(embedded=False, grouping=False), "conv")
        cffs = replay(trace, make_cffs(), "cffs")
        assert conv.operations == cffs.operations == len(trace)
        assert cffs.seconds < conv.seconds  # same activity, faster system

    def test_replay_on_ffs(self):
        trace = self.record_workload()
        result = replay(trace, make_ffs(), "ffs")
        assert result.seconds > 0

    def test_replay_deterministic(self):
        trace = self.record_workload()
        a = replay(trace, make_cffs())
        b = replay(trace, make_cffs())
        assert a.seconds == b.seconds
        assert a.disk_requests == b.disk_requests

    def test_serialized_trace_replays(self):
        trace = Trace.loads(self.record_workload().dumps())
        target = make_cffs()
        replay(trace, target)
        assert len(target.readdir("/proj")) == 10
