"""Shared behaviour suite: runs against FFS, C-FFS, and the
conventional (both-techniques-off) configuration via the ``anyfs``
fixture.  Anything here is a portable file system contract."""

import pytest

from repro.blockdev.device import BLOCK_SIZE
from repro.errors import (
    BadFileDescriptor,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
)
from repro.vfs.stat import FileKind


class TestCreateAndLookup:
    def test_create_then_stat(self, anyfs):
        anyfs.create("/a")
        st = anyfs.stat("/a")
        assert st.kind is FileKind.FILE
        assert st.size == 0
        assert st.nlink == 1

    def test_create_duplicate_fails(self, anyfs):
        anyfs.create("/a")
        with pytest.raises(FileExists):
            anyfs.create("/a")

    def test_missing_file(self, anyfs):
        with pytest.raises(FileNotFound):
            anyfs.stat("/nope")

    def test_missing_parent(self, anyfs):
        with pytest.raises(FileNotFound):
            anyfs.create("/no/such/file")

    def test_file_as_directory_component(self, anyfs):
        anyfs.create("/a")
        with pytest.raises(NotADirectory):
            anyfs.create("/a/b")

    def test_exists(self, anyfs):
        assert not anyfs.exists("/a")
        anyfs.create("/a")
        assert anyfs.exists("/a")

    def test_root_stat(self, anyfs):
        assert anyfs.stat("/").kind is FileKind.DIRECTORY

    def test_many_names_in_one_directory(self, anyfs):
        names = ["f%03d" % i for i in range(200)]
        for n in names:
            anyfs.create("/" + n)
        assert sorted(anyfs.readdir("/")) == sorted(names)


class TestReadWrite:
    def test_roundtrip_small(self, anyfs):
        anyfs.write_file("/a", b"hello")
        assert anyfs.read_file("/a") == b"hello"

    def test_roundtrip_exact_block(self, anyfs):
        data = bytes(range(256)) * 16
        anyfs.write_file("/a", data)
        assert anyfs.read_file("/a") == data

    def test_roundtrip_multiblock(self, anyfs):
        data = b"m" * (3 * BLOCK_SIZE + 123)
        anyfs.write_file("/a", data)
        assert anyfs.read_file("/a") == data

    def test_roundtrip_indirect(self, anyfs):
        data = b"i" * (14 * BLOCK_SIZE)  # beyond 12 direct pointers
        anyfs.write_file("/a", data)
        assert anyfs.read_file("/a") == data

    def test_overwrite_shrinks_nothing(self, anyfs):
        anyfs.write_file("/a", b"x" * 100)
        fd = anyfs.open("/a")
        anyfs.pwrite(fd, 0, b"y" * 10)
        anyfs.close(fd)
        got = anyfs.read_file("/a")
        assert got == b"y" * 10 + b"x" * 90

    def test_sparse_hole_reads_zero(self, anyfs):
        fd = anyfs.open("/a", create=True)
        anyfs.pwrite(fd, 2 * BLOCK_SIZE, b"end")
        data = anyfs.pread(fd, 0, 2 * BLOCK_SIZE + 3)
        anyfs.close(fd)
        assert data[:2 * BLOCK_SIZE] == bytes(2 * BLOCK_SIZE)
        assert data[-3:] == b"end"

    def test_read_past_eof_truncated(self, anyfs):
        anyfs.write_file("/a", b"abc")
        fd = anyfs.open("/a")
        assert anyfs.pread(fd, 1, 100) == b"bc"
        assert anyfs.pread(fd, 10, 5) == b""
        anyfs.close(fd)

    def test_sequential_fd_io(self, anyfs):
        fd = anyfs.open("/a", create=True)
        anyfs.write(fd, b"one")
        anyfs.write(fd, b"two")
        anyfs.seek(fd, 0)
        assert anyfs.read(fd, 6) == b"onetwo"
        anyfs.close(fd)

    def test_closed_fd_rejected(self, anyfs):
        fd = anyfs.open("/a", create=True)
        anyfs.close(fd)
        with pytest.raises(BadFileDescriptor):
            anyfs.read(fd, 1)

    def test_open_directory_for_io_fails(self, anyfs):
        anyfs.mkdir("/d")
        with pytest.raises(IsADirectory):
            anyfs.open("/d")

    def test_size_tracks_writes(self, anyfs):
        fd = anyfs.open("/a", create=True)
        anyfs.pwrite(fd, 0, b"x" * 100)
        anyfs.pwrite(fd, 5000, b"y" * 10)
        anyfs.close(fd)
        assert anyfs.stat("/a").size == 5010

    def test_mtime_advances(self, anyfs):
        anyfs.write_file("/a", b"1")
        t1 = anyfs._resolve("/a").mtime
        anyfs.write_file("/b", b"filler")  # advance simulated time
        anyfs.write_file("/a", b"22")
        assert anyfs._resolve("/a").mtime > t1
        assert anyfs.stat("/a").size == 2


class TestTruncate:
    def test_truncate_to_zero(self, anyfs):
        anyfs.write_file("/a", b"x" * 10000)
        anyfs.truncate("/a", 0)
        st = anyfs.stat("/a")
        assert st.size == 0
        assert st.nblocks == 0
        assert anyfs.read_file("/a") == b""

    def test_truncate_partial(self, anyfs):
        anyfs.write_file("/a", b"x" * 10000)
        anyfs.truncate("/a", 100)
        assert anyfs.read_file("/a") == b"x" * 100

    def test_truncate_frees_blocks(self, anyfs):
        free0 = anyfs.free_blocks()
        anyfs.write_file("/a", b"x" * (20 * BLOCK_SIZE))
        assert anyfs.free_blocks() < free0
        anyfs.truncate("/a", 0)
        assert anyfs.free_blocks() >= free0 - 2  # indirect slack allowed

    def test_truncate_then_grow_reads_zeros(self, anyfs):
        anyfs.write_file("/a", b"x" * 3000)
        anyfs.truncate("/a", 1000)
        fd = anyfs.open("/a")
        anyfs.pwrite(fd, 2000, b"!")
        data = anyfs.pread(fd, 0, 2001)
        anyfs.close(fd)
        assert data[:1000] == b"x" * 1000
        assert data[1000:2000] == bytes(1000)
        assert data[2000:] == b"!"

    def test_truncate_grow_extends_logical_size(self, anyfs):
        anyfs.write_file("/a", b"ab")
        anyfs.truncate("/a", 100)
        assert anyfs.stat("/a").size == 100
        assert anyfs.read_file("/a") == b"ab" + bytes(98)

    def test_truncate_directory_fails(self, anyfs):
        anyfs.mkdir("/d")
        with pytest.raises(IsADirectory):
            anyfs.truncate("/d", 0)


class TestUnlink:
    def test_unlink_removes_name(self, anyfs):
        anyfs.write_file("/a", b"x")
        anyfs.unlink("/a")
        assert not anyfs.exists("/a")

    def test_unlink_frees_space(self, anyfs):
        # Warm up structures that legitimately persist (the root
        # directory's first block, the external inode table).
        anyfs.write_file("/warm", b"w")
        anyfs.unlink("/warm")
        free0 = anyfs.free_blocks()
        anyfs.write_file("/a", b"x" * (8 * BLOCK_SIZE))
        anyfs.unlink("/a")
        assert anyfs.free_blocks() == free0

    def test_unlink_missing(self, anyfs):
        with pytest.raises(FileNotFound):
            anyfs.unlink("/a")

    def test_unlink_directory_fails(self, anyfs):
        anyfs.mkdir("/d")
        with pytest.raises(IsADirectory):
            anyfs.unlink("/d")

    def test_name_reusable_after_unlink(self, anyfs):
        anyfs.write_file("/a", b"old")
        anyfs.unlink("/a")
        anyfs.write_file("/a", b"new")
        assert anyfs.read_file("/a") == b"new"

    def test_create_delete_storm(self, anyfs):
        for round_ in range(3):
            for i in range(50):
                anyfs.write_file("/f%02d" % i, b"d" * 512)
            for i in range(50):
                anyfs.unlink("/f%02d" % i)
        assert anyfs.readdir("/") == []


class TestDirectories:
    def test_mkdir_and_nest(self, anyfs):
        anyfs.mkdir("/d")
        anyfs.mkdir("/d/e")
        anyfs.write_file("/d/e/f", b"deep")
        assert anyfs.read_file("/d/e/f") == b"deep"

    def test_mkdir_duplicate(self, anyfs):
        anyfs.mkdir("/d")
        with pytest.raises(FileExists):
            anyfs.mkdir("/d")

    def test_readdir_empty(self, anyfs):
        anyfs.mkdir("/d")
        assert anyfs.readdir("/d") == []

    def test_readdir_of_file_fails(self, anyfs):
        anyfs.create("/a")
        with pytest.raises(NotADirectory):
            anyfs.readdir("/a")

    def test_rmdir(self, anyfs):
        anyfs.mkdir("/d")
        anyfs.rmdir("/d")
        assert not anyfs.exists("/d")

    def test_rmdir_nonempty(self, anyfs):
        anyfs.mkdir("/d")
        anyfs.create("/d/a")
        with pytest.raises(DirectoryNotEmpty):
            anyfs.rmdir("/d")

    def test_rmdir_of_file(self, anyfs):
        anyfs.create("/a")
        with pytest.raises(NotADirectory):
            anyfs.rmdir("/a")

    def test_deep_nesting(self, anyfs):
        path = ""
        for i in range(12):
            path += "/d%d" % i
            anyfs.mkdir(path)
        anyfs.write_file(path + "/leaf", b"bottom")
        assert anyfs.read_file(path + "/leaf") == b"bottom"

    def test_directory_grows_past_one_block(self, anyfs):
        anyfs.mkdir("/big")
        names = ["file-with-a-longish-name-%04d" % i for i in range(150)]
        for n in names:
            anyfs.create("/big/" + n)
        assert anyfs.stat("/big").size > BLOCK_SIZE
        assert sorted(anyfs.readdir("/big")) == sorted(names)
        for n in names:
            assert anyfs.exists("/big/" + n)


class TestRename:
    def test_rename_same_dir(self, anyfs):
        anyfs.write_file("/a", b"data")
        anyfs.rename("/a", "/b")
        assert not anyfs.exists("/a")
        assert anyfs.read_file("/b") == b"data"

    def test_rename_across_dirs(self, anyfs):
        anyfs.mkdir("/d1")
        anyfs.mkdir("/d2")
        anyfs.write_file("/d1/a", b"move me")
        anyfs.rename("/d1/a", "/d2/b")
        assert anyfs.read_file("/d2/b") == b"move me"
        assert anyfs.readdir("/d1") == []

    def test_rename_replaces_file(self, anyfs):
        anyfs.write_file("/a", b"new")
        anyfs.write_file("/b", b"old")
        anyfs.rename("/a", "/b")
        assert anyfs.read_file("/b") == b"new"
        assert not anyfs.exists("/a")

    def test_rename_missing_source(self, anyfs):
        with pytest.raises(FileNotFound):
            anyfs.rename("/a", "/b")

    def test_rename_directory(self, anyfs):
        anyfs.mkdir("/d1")
        anyfs.write_file("/d1/x", b"inside")
        anyfs.rename("/d1", "/d2")
        assert anyfs.read_file("/d2/x") == b"inside"
        assert not anyfs.exists("/d1")

    def test_rename_onto_directory_fails(self, anyfs):
        anyfs.create("/a")
        anyfs.mkdir("/d")
        with pytest.raises(FileExists):
            anyfs.rename("/a", "/d")

    def test_rename_then_write(self, anyfs):
        anyfs.write_file("/a", b"v1")
        anyfs.rename("/a", "/b")
        anyfs.write_file("/b", b"v2!")
        assert anyfs.read_file("/b") == b"v2!"


class TestLinks:
    def test_link_shares_data(self, anyfs):
        anyfs.write_file("/a", b"shared")
        anyfs.link("/a", "/b")
        assert anyfs.read_file("/b") == b"shared"
        assert anyfs.stat("/a").nlink == 2
        assert anyfs.stat("/a").file_id == anyfs.stat("/b").file_id

    def test_write_via_one_name_visible_via_other(self, anyfs):
        anyfs.write_file("/a", b"first")
        anyfs.link("/a", "/b")
        fd = anyfs.open("/b")
        anyfs.pwrite(fd, 0, b"FIRST")
        anyfs.close(fd)
        assert anyfs.read_file("/a") == b"FIRST"

    def test_unlink_one_name_keeps_data(self, anyfs):
        anyfs.write_file("/a", b"keep")
        anyfs.link("/a", "/b")
        anyfs.unlink("/a")
        assert anyfs.read_file("/b") == b"keep"
        assert anyfs.stat("/b").nlink == 1

    def test_unlink_last_name_frees(self, anyfs):
        # Warm up persistent structures (root dir block, external
        # inode table — which "grows as needed but does not shrink").
        anyfs.write_file("/warm", b"w")
        anyfs.link("/warm", "/warm2")
        anyfs.unlink("/warm")
        anyfs.unlink("/warm2")
        free0 = anyfs.free_blocks()
        anyfs.write_file("/a", b"x" * (4 * BLOCK_SIZE))
        anyfs.link("/a", "/b")
        anyfs.unlink("/a")
        anyfs.unlink("/b")
        assert anyfs.free_blocks() == free0

    def test_link_to_directory_fails(self, anyfs):
        anyfs.mkdir("/d")
        with pytest.raises(IsADirectory):
            anyfs.link("/d", "/d2")

    def test_link_existing_target(self, anyfs):
        anyfs.create("/a")
        anyfs.create("/b")
        with pytest.raises(FileExists):
            anyfs.link("/a", "/b")


class TestPersistence:
    def test_sync_then_cold_read(self, anyfs):
        anyfs.mkdir("/d")
        anyfs.write_file("/d/a", b"cold data" * 100)
        anyfs.sync()
        anyfs.drop_caches()
        assert anyfs.read_file("/d/a") == b"cold data" * 100

    def test_cold_readdir(self, anyfs):
        anyfs.mkdir("/d")
        for i in range(60):
            anyfs.create("/d/f%02d" % i)
        anyfs.drop_caches()
        assert len(anyfs.readdir("/d")) == 60

    def test_cold_stat_preserves_metadata(self, anyfs):
        anyfs.write_file("/a", b"z" * 12345)
        anyfs.link("/a", "/b")
        anyfs.drop_caches()
        st = anyfs.stat("/a")
        assert st.size == 12345
        assert st.nlink == 2

    def test_everything_survives_remount(self, anyfs):
        anyfs.mkdir("/d")
        anyfs.write_file("/d/a", b"A" * 5000)
        anyfs.write_file("/top", b"B" * 100)
        anyfs.sync()
        remounted = type(anyfs).mount(anyfs.device, anyfs.config)
        assert remounted.read_file("/d/a") == b"A" * 5000
        assert remounted.read_file("/top") == b"B" * 100
        assert sorted(remounted.readdir("/")) == ["d", "top"]

    def test_free_counts_stable_across_remount(self, anyfs):
        anyfs.write_file("/a", b"x" * 50000)
        anyfs.sync()
        free = anyfs.free_blocks()
        remounted = type(anyfs).mount(anyfs.device, anyfs.config)
        assert remounted.free_blocks() == free
