"""The paper's headline claims, verified at reduced scale on the full
ST31200 platform model.

These are the reproduction's acceptance tests: who wins, by roughly
what factor, and where the requests went.  Absolute numbers differ from
the paper (different substrate); the *shape* must hold.
"""

import pytest

from repro.cache.policy import MetadataPolicy
from repro.workloads import build_filesystem, run_smallfile

N_FILES = 1200


def bench(label, policy=MetadataPolicy.SYNC_METADATA, **over):
    fs = build_filesystem(label, policy, **over)
    return run_smallfile(fs, n_files=N_FILES, file_size=1024, label=label)


@pytest.fixture(scope="module")
def sync_results():
    return {label: bench(label)
            for label in ("conventional", "embedded", "grouping", "cffs")}


@pytest.fixture(scope="module")
def softdep_results():
    return {label: bench(label, MetadataPolicy.DELAYED_METADATA)
            for label in ("conventional", "cffs")}


class TestHeadline:
    def test_read_throughput_5_to_7x(self, sync_results):
        """Abstract: 'increase small file throughput (for both reads and
        writes) by a factor of 5-7'."""
        ratio = (sync_results["cffs"]["read"].files_per_second
                 / sync_results["conventional"]["read"].files_per_second)
        assert 4.5 <= ratio <= 9.0

    def test_write_throughput_large_factor_softdep(self, softdep_results):
        ratio = (softdep_results["cffs"]["create"].files_per_second
                 / softdep_results["conventional"]["create"].files_per_second)
        assert ratio >= 4.0

    def test_order_of_magnitude_fewer_read_requests(self, sync_results):
        """Abstract: 'reducing the number of disk accesses required by
        an order of magnitude'."""
        conv = sync_results["conventional"]["read"].requests_per_file
        cffs = sync_results["cffs"]["read"].requests_per_file
        assert conv / cffs >= 7.0

    def test_delete_improvement_around_250_percent(self, sync_results):
        """§4.2: '250% increase in file deletion throughput' from
        embedded inodes."""
        ratio = (sync_results["embedded"]["delete"].files_per_second
                 / sync_results["conventional"]["delete"].files_per_second)
        assert 2.0 <= ratio <= 4.5

    def test_create_sync_write_halving(self, sync_results):
        """[Ganger94]: one ordering write instead of two per create."""
        ratio = (sync_results["embedded"]["create"].files_per_second
                 / sync_results["conventional"]["create"].files_per_second)
        assert ratio >= 1.05
        conv_rq = sync_results["conventional"]["create"].requests_per_file
        emb_rq = sync_results["embedded"]["create"].requests_per_file
        assert conv_rq - emb_rq >= 0.8  # one fewer sync write per file

    def test_overwrite_improvement(self, sync_results):
        ratio = (sync_results["cffs"]["overwrite"].files_per_second
                 / sync_results["conventional"]["overwrite"].files_per_second)
        assert ratio >= 3.0


class TestTechniqueAttribution:
    def test_grouping_alone_wins_reads(self, sync_results):
        ratio = (sync_results["grouping"]["read"].files_per_second
                 / sync_results["conventional"]["read"].files_per_second)
        assert ratio >= 4.0

    def test_embedding_alone_does_not_win_reads(self, sync_results):
        """Embedded inodes help metadata ops; data reads stay
        positioning-bound without grouping."""
        ratio = (sync_results["embedded"]["read"].files_per_second
                 / sync_results["conventional"]["read"].files_per_second)
        assert ratio < 2.0

    def test_grouping_alone_does_not_win_deletes(self, sync_results):
        ratio = (sync_results["grouping"]["delete"].files_per_second
                 / sync_results["conventional"]["delete"].files_per_second)
        assert ratio < 1.5

    def test_both_techniques_compose(self, sync_results):
        """C-FFS is at least as good as either technique alone, in
        every phase."""
        for phase in ("create", "read", "overwrite", "delete"):
            cffs = sync_results["cffs"][phase].files_per_second
            for single in ("embedded", "grouping"):
                assert cffs >= 0.9 * sync_results[single][phase].files_per_second


class TestSoftUpdates:
    def test_softdep_helps_conventional_creates(self, softdep_results, sync_results):
        """Figure 6's premise: removing sync writes speeds up the
        conventional system too."""
        assert (softdep_results["conventional"]["create"].files_per_second
                > sync_results["conventional"]["create"].files_per_second)

    def test_grouping_still_wins_under_softdep(self, softdep_results):
        """The paper's point: soft updates do not subsume grouping —
        reads and writes still need adjacency."""
        read_ratio = (softdep_results["cffs"]["read"].files_per_second
                      / softdep_results["conventional"]["read"].files_per_second)
        assert read_ratio >= 4.5
