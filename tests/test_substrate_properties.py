"""Property-based invariants for the substrate: allocator, write
buffer, and drive timing under random operation sequences."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.cache import WriteBuffer
from repro.disk.drive import SimulatedDisk
from tests.conftest import TEST_PROFILE
from tests.test_alloc_mapping import make_alloc


class TestAllocatorModel:
    @given(st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(0, 2)),
        min_size=1, max_size=120,
    ))
    @settings(max_examples=50, deadline=None)
    def test_random_alloc_free_matches_set_model(self, ops):
        """Allocator state always equals a simple set model: no double
        allocations, frees restore availability, counts agree."""
        alloc, _cache = make_alloc(n_cgs=2, blocks_per_cg=64, data_start=4)
        model = set()
        initial_free = alloc.free_blocks_total
        for op, cg in ops:
            cg = cg % 2
            if op == "alloc":
                try:
                    bno = alloc.alloc_block(cg)
                except Exception:
                    assert len(model) == initial_free
                    continue
                assert bno not in model
                model.add(bno)
            elif model:
                victim = sorted(model)[0]
                alloc.free_block(victim)
                model.discard(victim)
            assert alloc.free_blocks_total == initial_free - len(model)
        for bno in model:
            assert alloc.block_is_allocated(bno)

    @given(st.lists(st.integers(0, 2), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_contiguous_runs_never_overlap(self, prefs):
        alloc, _cache = make_alloc(n_cgs=3, blocks_per_cg=128, data_start=4)
        taken = set()
        for pref in prefs:
            start = alloc.alloc_contiguous(pref % 3, 8, align=8)
            if start is None:
                continue
            run = set(range(start, start + 8))
            assert not (run & taken)
            taken |= run


class TestWriteBufferModel:
    @given(st.lists(
        st.tuples(st.integers(0, 30), st.sampled_from([8, 16])),
        min_size=1, max_size=60,
    ))
    @settings(max_examples=60, deadline=None)
    def test_everything_added_drains_exactly_once(self, writes):
        """Sector-ranges put into the buffer come back out exactly once
        (coalesced), with pending counts consistent throughout."""
        wb = WriteBuffer(capacity_sectors=10_000)
        expected = {}
        for slot, n in writes:
            start = slot * 64  # disjoint slots: no partial overlaps
            wb.add(start, n, when=1.0)
            expected[start] = n
        assert wb.pending_sectors == sum(expected.values())
        drained = []
        while not wb.empty:
            start, n, _ready = wb.pop_drain()
            drained.append((start, n))
        assert wb.pending_sectors == 0
        covered = set()
        for start, n in drained:
            sectors = set(range(start, start + n))
            assert not (sectors & covered)
            covered |= sectors
        want = set()
        for start, n in expected.items():
            want |= set(range(start, start + n))
        assert covered == want

    @given(st.lists(st.integers(0, 50), min_size=2, max_size=50, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_drain_order_is_single_ascending_sweep(self, slots):
        """C-LOOK from rotor 0: drains come out in ascending order."""
        wb = WriteBuffer(capacity_sectors=100_000)
        for slot in slots:
            wb.add(slot * 100, 8)
        order = []
        while not wb.empty:
            order.append(wb.pop_drain()[0])
        assert order == sorted(order)


class TestDriveTimingProperties:
    @given(st.lists(
        st.tuples(st.booleans(), st.integers(0, 1000), st.sampled_from([8, 32, 128])),
        min_size=1, max_size=60,
    ))
    @settings(max_examples=30, deadline=None)
    def test_clock_monotone_and_bounded(self, ops):
        """The clock never regresses, each op costs at least its
        command overhead, and no single small op exceeds a generous
        bound (a write may stall on a full write-behind buffer, paying
        for queued drains, so the bound covers accumulated work)."""
        disk = SimulatedDisk(TEST_PROFILE)
        bound = 1.0
        for is_write, slot, n in ops:
            lba = (slot * 97) % (disk.total_sectors - n)
            before = disk.clock.now
            if is_write:
                disk.write(lba, n)
            else:
                disk.read(lba, n)
            elapsed = disk.clock.now - before
            assert elapsed >= TEST_PROFILE.command_overhead_ms / 1000.0 * 0.99
            assert elapsed < bound
        disk.flush_write_buffer()
        assert disk.write_buffer.empty

    @given(st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_determinism_for_any_seed(self, seed):
        def run() -> float:
            disk = SimulatedDisk(TEST_PROFILE)
            rng = random.Random(seed)
            for _ in range(30):
                lba = rng.randrange(0, disk.total_sectors - 128)
                if rng.random() < 0.5:
                    disk.read(lba, 8)
                else:
                    disk.write(lba, 8)
            disk.flush_write_buffer()
            return disk.clock.now

        assert run() == run()


class TestEndToEndDeterminism:
    def test_full_benchmark_bitwise_repeatable(self):
        from repro.workloads import run_smallfile
        from tests.conftest import make_cffs

        def run():
            fs = make_cffs()
            res = run_smallfile(fs, n_files=120, file_size=1024)
            return [(p, r.seconds, r.disk_reads, r.disk_writes)
                    for p, r in res.phases.items()]

        assert run() == run()
