"""Flow-engine tests: CFG shape, dataflow solvers, call-graph
summaries, and trigger/non-trigger fixtures for the three flow rules
(B001 buffer ownership, J001 journal ordering, O001 hot-path
discipline), plus a JSON-report golden for a flow run.

Every trigger fixture is the pre-fix shape of a pattern that really
existed in the tree (e.g. J001's mutate-check-raise mirrors the old
``_dir_remove_entry``); the paired non-trigger fixture is the shipped
fix, so the rules provably separate the two.
"""

import ast
import json
import textwrap

from repro.lint import lint_sources
from repro.lint.core import load_source
from repro.lint.flow import (
    FlowContext,
    build_cfg,
    must_reach_after,
    node_calls,
)
from repro.lint.reporters import render_json


def rules_of(result, suppressed=None):
    return {
        f.rule
        for f in result.findings
        if suppressed is None or f.suppressed is suppressed
    }


def _func(source):
    tree = ast.parse(textwrap.dedent(source))
    return tree.body[0]


# -- CFG construction ---------------------------------------------------------


def test_cfg_if_else_branches_rejoin():
    cfg = build_cfg(_func(
        """
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
        """))
    stmts = {n.index: type(n.stmt).__name__ for n in cfg.real_nodes()}
    if_node = next(n for n in cfg.real_nodes() if stmts[n.index] == "If")
    assert len(if_node.succs) == 2
    ret = next(n for n in cfg.real_nodes() if stmts[n.index] == "Return")
    # Both assignment arms flow into the return.
    assigns = [n for n in cfg.real_nodes() if stmts[n.index] == "Assign"]
    assert all(n.succs == [ret.index] for n in assigns)
    assert ret.succs == [cfg.exit]


def test_cfg_while_true_has_no_fall_through():
    cfg = build_cfg(_func(
        """
        def f():
            while True:
                x = 1
            return x
        """))
    header = next(n for n in cfg.real_nodes()
                  if isinstance(n.stmt, ast.While))
    # Only the loop-body successor: the constant test never falls out,
    # so the trailing return is unreachable from the header.
    assert len(header.succs) == 1


def test_cfg_try_body_edges_into_handler():
    cfg = build_cfg(_func(
        """
        def f():
            try:
                risky()
            except ValueError:
                cleanup()
            done()
        """))
    risky = next(n for n in cfg.real_nodes()
                 if isinstance(n.stmt, ast.Expr)
                 and "risky" in ast.dump(n.stmt))
    handler = next(n for n in cfg.real_nodes()
                   if isinstance(n.stmt, ast.Expr)
                   and "cleanup" in ast.dump(n.stmt))
    assert handler.index in risky.succs  # the body may raise into it


def test_cfg_break_exits_loop():
    cfg = build_cfg(_func(
        """
        def f(xs):
            for x in xs:
                if x:
                    break
            return 1
        """))
    brk = next(n for n in cfg.real_nodes() if isinstance(n.stmt, ast.Break))
    ret = next(n for n in cfg.real_nodes() if isinstance(n.stmt, ast.Return))
    assert brk.succs == [ret.index]


def test_node_calls_sees_header_only():
    # A compound statement's node carries its header expressions, not
    # its body (the body statements are their own nodes).
    cfg = build_cfg(_func(
        """
        def f(xs):
            for x in iter_all(xs):
                inner(x)
        """))
    loop = next(n for n in cfg.real_nodes() if isinstance(n.stmt, ast.For))
    names = {c.func.id for c in node_calls(loop.stmt)}
    assert names == {"iter_all"}


# -- dataflow solvers ---------------------------------------------------------


def test_must_reach_after_diamond():
    cfg = build_cfg(_func(
        """
        def f(x):
            start()
            if x:
                seal()
            else:
                other()
            return 1
        """))
    is_event = [False] * len(cfg.nodes)
    for node in cfg.real_nodes():
        if any(isinstance(c.func, ast.Name) and c.func.id == "seal"
               for c in node_calls(node.stmt)):
            is_event[node.index] = True
    after = must_reach_after(cfg, is_event)
    start = next(n for n in cfg.real_nodes()
                 if isinstance(n.stmt, ast.Expr)
                 and "start" in ast.dump(n.stmt))
    # One arm seals, the other does not: not ALL paths reach the seal.
    assert not after[start.index]


def test_must_reach_after_both_arms_sealed():
    cfg = build_cfg(_func(
        """
        def f(x):
            start()
            if x:
                seal()
            else:
                seal()
            return 1
        """))
    is_event = [False] * len(cfg.nodes)
    for node in cfg.real_nodes():
        if any(isinstance(c.func, ast.Name) and c.func.id == "seal"
               for c in node_calls(node.stmt)):
            is_event[node.index] = True
    after = must_reach_after(cfg, is_event)
    start = next(n for n in cfg.real_nodes()
                 if isinstance(n.stmt, ast.Expr)
                 and "start" in ast.dump(n.stmt))
    assert after[start.index]


# -- call-graph summaries -----------------------------------------------------


def _flow_of(sources):
    modules = [load_source(text, path)
               for path, text in sorted(sources.items())]
    return FlowContext(modules)


def test_callgraph_transitive_param_mutation():
    flow = _flow_of({
        "src/repro/ffs/helpers.py": (
            "def poke(buf):\n"
            "    buf[0] = 1\n"
            "def wrap(data):\n"
            "    poke(data)\n"
        ),
    })
    wrap = flow.by_name["wrap"][0]
    assert wrap.mutates_params == {0}  # inherited from poke via the edge


def test_callgraph_transitive_seam_reachability():
    flow = _flow_of({
        "src/repro/ffs/helpers.py": (
            "def seal_it(fs, bno):\n"
            "    fs._meta_write(bno)\n"
            "def outer(fs, bno):\n"
            "    seal_it(fs, bno)\n"
            "def unrelated(fs):\n"
            "    fs.describe()\n"
        ),
    })
    assert flow.by_name["seal_it"][0].reaches_seam
    assert flow.by_name["outer"][0].reaches_seam
    assert not flow.by_name["unrelated"][0].reaches_seam


def test_callgraph_hot_marking_from_workload_roots():
    flow = _flow_of({
        "src/repro/workloads/smallfile.py": (
            "def run(fs):\n"
            "    fs.touch_hot()\n"
        ),
        "src/repro/ffs/codec.py": (
            "def touch_hot():\n"
            "    pass\n"
            "def cold_helper():\n"
            "    pass\n"
        ),
    })
    assert flow.by_name["run"][0].hot          # root module
    assert flow.by_name["touch_hot"][0].hot    # reached by name
    assert not flow.by_name["cold_helper"][0].hot


def test_callgraph_returns_buffer_summary():
    flow = _flow_of({
        "src/repro/ffs/helpers.py": (
            "def block_of(self, bno):\n"
            "    buf = self.cache.get(bno)\n"
            "    return buf.data\n"
        ),
    })
    assert "block_of" in flow.returns_buffer_names()


# -- B001 buffer ownership ----------------------------------------------------


def test_b001_mutation_after_handoff_is_flagged():
    result = lint_sources({
        "src/repro/cache/writeback.py": (
            "def flush(dev, bno):\n"
            "    data = bytearray(4096)\n"
            "    dev.write_block(bno, data)\n"
            "    data[0] = 1\n"
        ),
    }, flow=True)
    assert "B001" in rules_of(result, suppressed=False)


def test_b001_mutation_before_handoff_is_clean():
    result = lint_sources({
        "src/repro/cache/writeback.py": (
            "def flush(dev, bno):\n"
            "    data = bytearray(4096)\n"
            "    data[0] = 1\n"
            "    dev.write_block(bno, data)\n"
        ),
    }, flow=True)
    assert "B001" not in rules_of(result)


def test_b001_is_path_sensitive():
    # The mutation happens only on the path where no handoff occurred:
    # a line-based rule would flag it, the dataflow rule must not.
    result = lint_sources({
        "src/repro/cache/writeback.py": (
            "def flush(dev, bno, urgent):\n"
            "    data = bytearray(4096)\n"
            "    if urgent:\n"
            "        dev.write_block(bno, data)\n"
            "        return\n"
            "    data[0] = 1\n"
            "    dev.write_block(bno, data)\n"
        ),
    }, flow=True)
    assert "B001" not in rules_of(result)


def test_b001_view_aliases_its_backing_buffer():
    result = lint_sources({
        "src/repro/cache/writeback.py": (
            "def flush(dev, bno):\n"
            "    backing = bytearray(4096)\n"
            "    view = memoryview(backing)\n"
            "    dev.write_block(bno, view)\n"
            "    backing[0] = 1\n"
        ),
    }, flow=True)
    assert "B001" in rules_of(result, suppressed=False)


def test_b001_escape_via_return_is_flagged():
    result = lint_sources({
        "src/repro/cache/writeback.py": (
            "def flush(dev, bno):\n"
            "    data = bytearray(4096)\n"
            "    dev.write_block(bno, data)\n"
            "    return data\n"
        ),
    }, flow=True)
    assert "B001" in rules_of(result, suppressed=False)


def test_b001_mutation_through_helper_summary():
    # helper() mutates its parameter; calling it on a handed-off buffer
    # is a mutation even though no subscript store appears here.
    result = lint_sources({
        "src/repro/cache/writeback.py": (
            "def helper(buf):\n"
            "    buf[0] = 1\n"
            "def flush(dev, bno):\n"
            "    data = bytearray(4096)\n"
            "    dev.write_block(bno, data)\n"
            "    helper(data)\n"
        ),
    }, flow=True)
    assert "B001" in rules_of(result, suppressed=False)


def test_b001_fresh_allocation_rebind_is_clean():
    # A loop body that re-allocates its buffer each iteration starts a
    # new ownership generation; mutating the fresh one is fine.
    result = lint_sources({
        "src/repro/cache/writeback.py": (
            "def flush(dev, blocks):\n"
            "    for bno in blocks:\n"
            "        data = bytearray(4096)\n"
            "        data[0] = bno\n"
            "        dev.write_block(bno, data)\n"
        ),
    }, flow=True)
    assert "B001" not in rules_of(result)


# -- J001 journal ordering ----------------------------------------------------


def test_j001_early_return_skipping_seam_is_flagged():
    result = lint_sources({
        "src/repro/ffs/filesystem.py": (
            "def set_flag(self, bno, flag):\n"
            "    data = self.cache.get(bno).data\n"
            "    data[0] = 1\n"
            "    if not flag:\n"
            "        return\n"
            "    self._meta_write(bno)\n"
        ),
    }, flow=True)
    assert "J001" in rules_of(result, suppressed=False)


def test_j001_mutate_check_raise_before_seam_is_flagged():
    # The pre-fix _dir_remove_entry shape: the codec scrubbed the block,
    # then a consistency raise skipped the seam.
    result = lint_sources({
        "src/repro/ffs/filesystem.py": (
            "def scrub(data, name):\n"
            "    data[0] = 0\n"
            "    return 1\n"
            "def remove(self, bno, name, inum):\n"
            "    data = self.cache.get(bno).data\n"
            "    removed = scrub(data, name)\n"
            "    if removed != inum:\n"
            "        raise ValueError(name)\n"
            "    self._meta_write(bno)\n"
        ),
    }, flow=True)
    assert "J001" in rules_of(result, suppressed=False)


def test_j001_seal_before_check_is_clean():
    # The shipped fix: seal first, then raise on the mismatch.
    result = lint_sources({
        "src/repro/ffs/filesystem.py": (
            "def scrub(data, name):\n"
            "    data[0] = 0\n"
            "    return 1\n"
            "def remove(self, bno, name, inum):\n"
            "    data = self.cache.get(bno).data\n"
            "    removed = scrub(data, name)\n"
            "    self._meta_write(bno)\n"
            "    if removed != inum:\n"
            "        raise ValueError(name)\n"
        ),
    }, flow=True)
    assert "J001" not in rules_of(result)


def test_j001_sealed_on_all_paths_is_clean():
    result = lint_sources({
        "src/repro/ffs/filesystem.py": (
            "def set_flag(self, bno, flag):\n"
            "    data = self.cache.get(bno).data\n"
            "    data[0] = 1\n"
            "    if flag:\n"
            "        self.cache.write_sync(bno)\n"
            "    else:\n"
            "        self.cache.mark_dirty(bno)\n"
        ),
    }, flow=True)
    assert "J001" not in rules_of(result)


def test_j001_helper_reaching_seam_counts_as_sealing():
    result = lint_sources({
        "src/repro/ffs/filesystem.py": (
            "def _seal(self, bno):\n"
            "    return self._meta_write(bno)\n"
            "def grow(self, bno):\n"
            "    data = self.cache.get(bno).data\n"
            "    data[0] = 1\n"
            "    self._seal(bno)\n"
        ),
    }, flow=True)
    assert "J001" not in rules_of(result)


def test_j001_ignores_codec_parameter_mutation():
    # Pure codecs mutate their *parameters*; sealing is the caller's
    # contract, so the codec module itself stays clean.
    result = lint_sources({
        "src/repro/ffs/directory.py": (
            "def add_entry(block, inum):\n"
            "    block[0] = inum\n"
            "    return True\n"
        ),
    }, flow=True)
    assert "J001" not in rules_of(result)


def test_j001_scratch_bytearray_is_not_metadata():
    # A local scratch buffer packed and handed straight to the device
    # has no cache seam to reach.
    result = lint_sources({
        "src/repro/ffs/superblock.py": (
            "def write_sb(dev, bno):\n"
            "    raw = bytearray(4096)\n"
            "    raw[0] = 1\n"
            "    if bno < 0:\n"
            "        return\n"
            "    dev.write_block(bno, raw)\n"
        ),
    }, flow=True)
    assert "J001" not in rules_of(result)


# -- O001 hot-path discipline -------------------------------------------------

_HOT_ROOT = (
    "def run(fs):\n"
    "    fs.touch_hot()\n"
)


def test_o001_unguarded_span_in_hot_loop_is_flagged():
    result = lint_sources({
        "src/repro/workloads/smallfile.py": _HOT_ROOT,
        "src/repro/ffs/fetch.py": (
            "from repro import obs\n"
            "def touch_hot(cache, blocks):\n"
            "    for bno in blocks:\n"
            "        with obs.span('fs', 'fetch'):\n"
            "            cache.get(bno)\n"
        ),
    }, flow=True)
    assert "O001" in rules_of(result, suppressed=False)


def test_o001_guarded_span_is_clean():
    result = lint_sources({
        "src/repro/workloads/smallfile.py": _HOT_ROOT,
        "src/repro/ffs/fetch.py": (
            "from repro import obs\n"
            "def touch_hot(cache, blocks):\n"
            "    for bno in blocks:\n"
            "        if obs.enabled():\n"
            "            with obs.span('fs', 'fetch'):\n"
            "                cache.get(bno)\n"
            "        else:\n"
            "            cache.get(bno)\n"
        ),
    }, flow=True)
    assert "O001" not in rules_of(result)


def test_o001_struct_in_hot_loop_only_when_reachable():
    result = lint_sources({
        "src/repro/workloads/smallfile.py": _HOT_ROOT,
        "src/repro/ffs/codec.py": (
            "import struct\n"
            "def touch_hot(block):\n"
            "    for off in range(0, 64, 8):\n"
            "        struct.unpack_from('<II', block, off)\n"
            "def cold_helper(block):\n"
            "    for off in range(0, 64, 8):\n"
            "        struct.unpack_from('<II', block, off)\n"
        ),
    }, flow=True)
    findings = [f for f in result.findings if f.rule == "O001"]
    assert len(findings) == 1
    assert findings[0].line == 4  # touch_hot's loop, not cold_helper's


def test_o001_precompiled_struct_is_clean():
    result = lint_sources({
        "src/repro/workloads/smallfile.py": _HOT_ROOT,
        "src/repro/ffs/codec.py": (
            "import struct\n"
            "_HDR = struct.Struct('<II')\n"
            "def touch_hot(block):\n"
            "    for off in range(0, 64, 8):\n"
            "        _HDR.unpack_from(block, off)\n"
        ),
    }, flow=True)
    assert "O001" not in rules_of(result)


def test_o001_span_outside_loop_is_clean():
    result = lint_sources({
        "src/repro/workloads/smallfile.py": _HOT_ROOT,
        "src/repro/ffs/fetch.py": (
            "from repro import obs\n"
            "def touch_hot(cache, bno):\n"
            "    with obs.span('fs', 'fetch'):\n"
            "        cache.get(bno)\n"
        ),
    }, flow=True)
    assert "O001" not in rules_of(result)


# -- flow rules stay out of the default run ----------------------------------


def test_flow_rules_require_opt_in():
    sources = {
        "src/repro/cache/writeback.py": (
            "def flush(dev, bno):\n"
            "    data = bytearray(4096)\n"
            "    dev.write_block(bno, data)\n"
            "    data[0] = 1\n"
        ),
    }
    assert "B001" not in rules_of(lint_sources(sources))
    assert "B001" in rules_of(lint_sources(sources, flow=True))
    # Asking for the rule by id also works without the flow switch.
    assert "B001" in rules_of(lint_sources(sources, rule_ids=["B001"]))


# -- JSON golden for a flow run ----------------------------------------------


def test_flow_json_reporter_golden():
    result = lint_sources({
        "src/repro/cache/writeback.py": (
            "def flush(dev, bno):\n"
            "    data = bytearray(4096)\n"
            "    dev.write_block(bno, data)\n"
            "    data[0] = 1\n"
        ),
    }, rule_ids=["B001"])
    payload = json.loads(render_json(result))
    assert payload == {
        "tool": "reprolint",
        "rules": {
            "B001": "buffer ownership across the device boundary",
        },
        "files_checked": 1,
        "findings": [
            {
                "rule": "B001",
                "message": "buffer mutated after device handoff in flush()",
                "path": "src/repro/cache/writeback.py",
                "module": "repro.cache.writeback",
                "line": 4,
                "col": 5,
                "suppressed": False,
            }
        ],
        "counts": {"unsuppressed": 1, "suppressed": 0},
        "ok": False,
    }
    assert render_json(result) == render_json(result)
