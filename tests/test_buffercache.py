"""Tests for the dual-indexed buffer cache."""

import pytest

from repro.blockdev.device import BLOCK_SIZE
from repro.cache.buffercache import BufferCache
from repro.errors import InvalidArgument
from tests.conftest import make_device


def make_cache(capacity: int = 16) -> BufferCache:
    return BufferCache(make_device(), capacity_blocks=capacity)


class TestLookups:
    def test_get_reads_through(self):
        cache = make_cache()
        buf = cache.get(5)
        assert bytes(buf.data) == bytes(BLOCK_SIZE)
        assert cache.misses == 1

    def test_second_get_hits(self):
        cache = make_cache()
        cache.get(5)
        cache.get(5)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_peek_never_reads(self):
        cache = make_cache()
        assert cache.peek(5) is None
        t = cache.device.clock.now
        cache.peek(5)
        assert cache.device.clock.now == t

    def test_logical_identity_assignment(self):
        cache = make_cache()
        cache.get(5, logical=(42, 0))
        assert cache.get_logical((42, 0)).bno == 5

    def test_logical_reassignment_drops_old(self):
        cache = make_cache()
        cache.get(5, logical=(42, 0))
        cache.get(5, logical=(42, 7))
        assert cache.get_logical((42, 0)) is None
        assert cache.get_logical((42, 7)).bno == 5

    def test_install_without_read(self):
        cache = make_cache()
        before = cache.device.disk.stats.reads
        cache.install(9, b"x" * BLOCK_SIZE, logical=(1, 0))
        assert cache.device.disk.stats.reads == before
        assert bytes(cache.get(9).data) == b"x" * BLOCK_SIZE

    def test_install_preserves_dirty_data(self):
        """A group read must not clobber newer cached data."""
        cache = make_cache()
        buf = cache.create(9)
        buf.data[:4] = b"NEW!"
        cache.mark_dirty(9)
        cache.install(9, b"old " * 1024)
        assert bytes(cache.get(9).data[:4]) == b"NEW!"

    def test_install_overwrites_clean_data(self):
        cache = make_cache()
        cache.get(9)
        cache.install(9, b"y" * BLOCK_SIZE)
        assert bytes(cache.get(9).data) == b"y" * BLOCK_SIZE


class TestWrites:
    def test_write_sync_reaches_device(self):
        cache = make_cache()
        buf = cache.create(7)
        buf.data[:] = b"z" * BLOCK_SIZE
        cache.write_sync(7)
        cache.device.flush()
        assert cache.device.peek_block(7) == b"z" * BLOCK_SIZE
        assert cache.dirty_count == 0

    def test_mark_dirty_then_flush(self):
        cache = make_cache()
        buf = cache.create(7)
        buf.data[:] = b"w" * BLOCK_SIZE
        cache.mark_dirty(7)
        assert cache.dirty_count == 1
        cache.sync()
        assert cache.dirty_count == 0
        assert cache.device.peek_block(7) == b"w" * BLOCK_SIZE

    def test_flush_batches_requests(self):
        cache = make_cache(64)
        for b in range(10, 18):
            cache.create(b)
            cache.mark_dirty(b)
        before = cache.device.disk.stats.writes
        cache.flush()
        assert cache.device.disk.stats.writes == before + 1  # coalesced

    def test_forget_discards_dirty(self):
        cache = make_cache()
        cache.create(7)
        cache.mark_dirty(7)
        cache.forget(7)
        assert cache.dirty_count == 0
        cache.sync()
        assert cache.device.peek_block(7) == bytes(BLOCK_SIZE)


class TestEviction:
    def test_capacity_enforced(self):
        cache = make_cache(8)
        for b in range(20):
            cache.get(b)
        assert cache.evictions >= 12

    def test_eviction_writes_dirty_back(self):
        cache = make_cache(8)
        buf = cache.create(0)
        buf.data[:] = b"d" * BLOCK_SIZE
        cache.mark_dirty(0)
        for b in range(1, 12):
            cache.get(b)
        assert cache.peek(0) is None
        cache.device.flush()
        assert cache.device.peek_block(0) == b"d" * BLOCK_SIZE

    def test_reread_after_eviction_sees_written_data(self):
        cache = make_cache(8)
        buf = cache.create(0)
        buf.data[:] = b"e" * BLOCK_SIZE
        cache.mark_dirty(0)
        for b in range(1, 12):
            cache.get(b)
        assert bytes(cache.get(0).data) == b"e" * BLOCK_SIZE

    def test_flush_companions_gathers(self):
        cache = make_cache(8)
        for b in range(3):
            cache.create(100 + b, logical=(9, b))
            cache.mark_dirty(100 + b)

        def companions(victim):
            return [100, 101, 102]

        cache.flush_companions = companions
        before = cache.device.disk.stats.writes
        # Force eviction of the oldest (100).
        for b in range(1, 10):
            cache.get(b)
        # All three went out in one coalesced request.
        assert cache.device.disk.stats.writes == before + 1
        assert cache.dirty_count == 0

    def test_lru_order(self):
        cache = make_cache(8)
        for b in range(8):
            cache.get(b)
        cache.get(0)  # touch 0 so 1 becomes LRU
        cache.get(100)
        assert cache.peek(1) is None
        assert cache.peek(0) is not None


class TestInvalidation:
    def test_invalidate_all_requires_clean(self):
        cache = make_cache()
        cache.create(5)
        cache.mark_dirty(5)
        with pytest.raises(InvalidArgument):
            cache.invalidate_all()

    def test_invalidate_all_clears(self):
        cache = make_cache()
        cache.get(5, logical=(1, 0))
        cache.invalidate_all()
        assert cache.peek(5) is None
        assert cache.get_logical((1, 0)) is None

    def test_drop_logical(self):
        cache = make_cache()
        cache.get(5, logical=(1, 0))
        cache.drop_logical((1, 0))
        assert cache.get_logical((1, 0)) is None
        assert cache.peek(5) is not None

    def test_rejects_tiny_capacity(self):
        with pytest.raises(InvalidArgument):
            BufferCache(make_device(), capacity_blocks=2)
