"""Differential tests: the optimized hot paths are behavior-neutral.

The perf overhaul (zero-copy block handling, the table-driven CRC32C
fast path, batched event-loop dispatch, allocation-free disabled
observability) promises to change *nothing* observable: for a fixed
seed, the disk image must stay byte-identical, and the trace/metric
event streams must stay identical too.  These tests pin that promise
to goldens captured from the pre-optimization code.

Three seeded scenarios cover the three stacks the optimizations touch:

- ``fig5``: the paper's smallfile benchmark on the conventional and
  C-FFS configurations (vfs -> core/ffs -> cache -> blockdev -> disk);
- ``postmark``: mixed transactional churn with deletes and appends;
- ``chaos``: the resilience soak (CRC32C verify on every read, remap,
  scrub) whose report renders deterministically.

Each scenario captures a SHA-256 of the device's logical contents
(:meth:`BlockDevice.content_digest` — independent of the image
compressor), of the JSONL trace export, and of the canonical metrics
snapshot, plus the simulated end time.  Regenerate with::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_differential.py

but ONLY from code whose behavior is the accepted baseline — the
whole point of the file is that regeneration is a reviewed event.
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro import obs
from repro.faults.chaos import ChaosConfig, render_chaos, run_chaos
from repro.workloads import build_filesystem, run_smallfile
from repro.workloads.postmark import PostmarkConfig, run_postmark

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "differential.json")

REGEN = os.environ.get("REPRO_REGEN_GOLDENS") == "1"


def _sha(text_or_bytes) -> str:
    data = (text_or_bytes if isinstance(text_or_bytes, bytes)
            else text_or_bytes.encode("utf-8"))
    return hashlib.sha256(data).hexdigest()


def _metrics_digest(registry) -> str:
    return _sha(json.dumps(registry.snapshot(), sort_keys=True))


def _traced_run(fs, body) -> dict:
    """Run ``body`` under a tracer; capture image/trace/metric digests.

    The tracer shares the drive's metrics registry (the ``repro trace``
    wiring), so the metrics digest covers disk counters, the request
    histogram, and every ``obs.count`` the layers emit, in one object.
    """
    device = fs.cache.device
    tracer = obs.Tracer(clock=device.clock,
                        registry=device.disk.stats.registry)
    obs.install(tracer)
    try:
        body()
    finally:
        obs.uninstall()
    return {
        "image": device.content_digest(),
        "trace": _sha(obs.export_jsonl(tracer)),
        "metrics": _metrics_digest(tracer.registry),
        "spans": len(tracer.spans),
        "sim_seconds": round(device.clock.now, 9),
    }


def capture_fig5() -> dict:
    out = {}
    for label in ("conventional", "cffs"):
        fs = build_filesystem(label)
        out[label] = _traced_run(
            fs, lambda fs=fs: run_smallfile(fs, n_files=120, file_size=4096,
                                            n_dirs=2))
    return out


def capture_postmark() -> dict:
    fs = build_filesystem("cffs")
    cfg = PostmarkConfig(n_files=150, n_transactions=300, seed=1997)
    return {"cffs": _traced_run(fs, lambda: run_postmark(fs, cfg))}


def capture_chaos() -> dict:
    # The soak builds its own (faulty, resilient) stack; its rendered
    # report is the deterministic fingerprint — it folds in every op
    # outcome, health transition, scrub verdict and fsck result.
    report = run_chaos(ChaosConfig())
    passed, reasons = report.verdict()
    assert passed, "chaos soak must pass before fingerprinting: %s" % reasons
    return {"report": _sha(render_chaos(report))}


CAPTURES = {
    "fig5": capture_fig5,
    "postmark": capture_postmark,
    "chaos": capture_chaos,
}


def _load_goldens() -> dict:
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _save_goldens(goldens: dict) -> None:
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(goldens, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_regen_goldens():
    """Regeneration entry point (no-op unless REPRO_REGEN_GOLDENS=1)."""
    if not REGEN:
        pytest.skip("set REPRO_REGEN_GOLDENS=1 to regenerate")
    _save_goldens({name: capture() for name, capture in CAPTURES.items()})


@pytest.mark.parametrize("scenario", sorted(CAPTURES))
def test_differential(scenario):
    if REGEN:
        pytest.skip("regenerating")
    goldens = _load_goldens()
    assert scenario in goldens, (
        "no golden for %r; regenerate from baseline code" % scenario)
    current = CAPTURES[scenario]()
    assert current == goldens[scenario], (
        "behavior diverged from the pre-optimization golden for %r.\n"
        "If the divergence is *intended* (a semantic change, not an "
        "optimization), regenerate with REPRO_REGEN_GOLDENS=1 and "
        "explain the change in the PR." % scenario)


def test_image_digest_ignores_compression_and_zero_blocks():
    """content_digest is stable across save/load and zero-block writes."""
    from repro.blockdev.device import BLOCK_SIZE, BlockDevice
    from repro.disk.profiles import SEAGATE_ST31200

    dev = BlockDevice(SEAGATE_ST31200)
    dev.write_block(7, b"\x42" * BLOCK_SIZE)
    digest = dev.content_digest()
    # Writing zeros somewhere else reads back identically to never
    # having written — the digest must not change.
    dev.write_block(9, bytes(BLOCK_SIZE))
    assert dev.content_digest() == digest
    # Round-trip through the compressed image format.
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "img")
        dev.save_image(path)
        assert BlockDevice.load_image(path).content_digest() == digest
