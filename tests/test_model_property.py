"""Property-based model check: random operation sequences against a
dictionary model, for every file system configuration; the image must
also pass fsck afterwards."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import FileExists, FileNotFound
from repro.fsck import fsck_cffs, fsck_ffs
from tests.conftest import make_cffs, make_ffs

# Small name pool so operations collide meaningfully.
name_pool = st.sampled_from(["a", "b", "c", "dd", "ee", "file1", "file2"])

operations = st.lists(
    st.one_of(
        st.tuples(st.just("write"), name_pool,
                  st.integers(min_value=0, max_value=6000)),
        st.tuples(st.just("unlink"), name_pool),
        st.tuples(st.just("rename"), name_pool, name_pool),
        st.tuples(st.just("truncate"), name_pool,
                  st.integers(min_value=0, max_value=3000)),
        st.tuples(st.just("link"), name_pool, name_pool),
        st.tuples(st.just("sync_drop"),),
    ),
    min_size=1,
    max_size=40,
)


def run_model(fs, ops):
    model = {}

    def payload(n):
        return bytes((i * 7 + n) % 256 for i in range(n))

    for op in ops:
        kind = op[0]
        if kind == "write":
            _, name, size = op
            data = payload(size)
            fs.write_file("/" + name, data)
            # Hard-linked names share a content cell, so a write via
            # one name is visible through all of them.
            _model_set(model, name, data)
        elif kind == "unlink":
            _, name = op
            if name in model:
                fs.unlink("/" + name)
                _model_unlink(model, name)
            else:
                with pytest.raises(FileNotFound):
                    fs.unlink("/" + name)
        elif kind == "rename":
            _, old, new = op
            if old not in model:
                with pytest.raises(FileNotFound):
                    fs.rename("/" + old, "/" + new)
            elif new in model and model[new] is model[old]:
                # POSIX: renaming one hard link onto another name of
                # the same file is a no-op; both names remain.
                fs.rename("/" + old, "/" + new)
            else:
                fs.rename("/" + old, "/" + new)
                _model_rename(model, old, new)
        elif kind == "truncate":
            _, name, size = op
            if name in model:
                fs.truncate("/" + name, size)
                data = _model_get(model, name)
                if size <= len(data):
                    _model_set_content(model, name, data[:size])
                else:
                    _model_set_content(model, name, data + bytes(size - len(data)))
        elif kind == "link":
            _, src, dst = op
            if src in model and dst not in model:
                fs.link("/" + src, "/" + dst)
                _model_link(model, src, dst)
            elif src in model and dst in model:
                with pytest.raises(FileExists):
                    fs.link("/" + src, "/" + dst)
        elif kind == "sync_drop":
            fs.sync()
            fs.drop_caches()

    # Final verification: contents and directory listing agree.
    assert sorted(fs.readdir("/")) == sorted(model.keys())
    for name in model:
        assert fs.read_file("/" + name) == _model_get(model, name), name
    fs.sync()
    return fs


# The model stores {name: group_id}; groups map to content so hard
# links alias properly.
def _fresh_model():
    return {}


def _model_set(model, name, data):
    group = model.get(name)
    if group is None:
        model[name] = [data]  # one-element list is the shared cell
    else:
        group[0] = data


def _model_set_content(model, name, data):
    model[name][0] = data


def _model_get(model, name):
    return model[name][0]


def _model_unlink(model, name):
    del model[name]


def _model_rename(model, old, new):
    cell = model.pop(old)
    model[new] = cell


def _model_link(model, src, dst):
    model[dst] = model[src]


@given(operations)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_ops_cffs(ops):
    fs = run_model(make_cffs(), ops)
    report = fsck_cffs(fs.device)
    assert report.ok, report.render()


@given(operations)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_ops_cffs_conventional(ops):
    fs = run_model(make_cffs(embedded=False, grouping=False), ops)
    report = fsck_cffs(fs.device)
    assert report.ok, report.render()


@given(operations)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_ops_ffs(ops):
    fs = run_model(make_ffs(), ops)
    report = fsck_ffs(fs.device)
    assert report.ok, report.render()


@given(operations)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_ops_cffs_softdep(ops):
    from repro.cache.policy import MetadataPolicy

    fs = run_model(make_cffs(policy=MetadataPolicy.DELAYED_METADATA), ops)
    report = fsck_cffs(fs.device)
    assert report.ok, report.render()


# ---------------------------------------------------------------------------
# Fault injection: transient faults are invisible to the oracle; hard
# faults surface as clean errors and a retried sync leaves no damage.
# ---------------------------------------------------------------------------

from repro.errors import MediaReadError, MediaWriteError  # noqa: E402
from repro.faults import FaultSchedule, FaultyBlockDevice  # noqa: E402


def _faulty(fs, schedule):
    fs.device = FaultyBlockDevice(fs.device, schedule=schedule)
    fs.cache.device = fs.device
    return fs


@given(operations, st.integers(min_value=0, max_value=999))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_ops_cffs_transient_faults(ops, fault_seed):
    """With the drive absorbing transient faults (bounded retries), the
    oracle must still agree byte-for-byte and the image stays clean."""
    fs = _faulty(make_cffs(), FaultSchedule(
        seed=fault_seed, transient_rate=0.15, max_transient_failures=2))
    run_model(fs, ops)
    report = fsck_cffs(fs.device)
    assert report.ok, report.render()


@given(operations, st.integers(min_value=0, max_value=999))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_ops_ffs_transient_faults(ops, fault_seed):
    fs = _faulty(make_ffs(), FaultSchedule(
        seed=fault_seed, transient_rate=0.15, max_transient_failures=2))
    run_model(fs, ops)
    report = fsck_ffs(fs.device)
    assert report.ok, report.render()


def test_hard_write_fault_fails_sync_cleanly_then_retries():
    """A hard write fault during a delayed-metadata sync raises a typed
    error, leaves the cache dirty, and a retried sync recovers fully."""
    from repro.cache.policy import MetadataPolicy

    fs = _faulty(make_cffs(policy=MetadataPolicy.DELAYED_METADATA),
                 FaultSchedule())
    for i in range(8):
        fs.write_file("/f%d" % i, b"h" * (700 * (i + 1)))
    # Fail the next media write — it will happen inside sync's flush.
    fs.device.schedule.fail_write(fs.device.stats.writes)
    with pytest.raises(MediaWriteError):
        fs.sync()
    assert fs.cache.dirty_count > 0  # nothing silently marked clean
    fs.sync()  # the fault was one-shot; the retry lands everything
    report = fsck_cffs(fs.device)
    assert report.pristine, report.render()
    fs.drop_caches()
    for i in range(8):
        assert fs.read_file("/f%d" % i) == b"h" * (700 * (i + 1))


def test_hard_read_fault_surfaces_not_corrupts():
    fs = _faulty(make_ffs(), FaultSchedule())
    fs.write_file("/x", b"y" * 5000)
    fs.sync()
    fs.drop_caches()
    fs.device.schedule.fail_read(fs.device.stats.reads)
    with pytest.raises(MediaReadError):
        fs.read_file("/x")
    assert fs.read_file("/x") == b"y" * 5000  # next attempt succeeds
    assert fsck_ffs(fs.device).pristine
