"""Crash-point sweep tests: every power-cut image repairs and remounts.

The fast tests subsample crash points (stride > 1) on smaller
workloads; the ``slow``-marked test is the full acceptance sweep —
power-cut after *every* media write of a 50-file run, on both formats,
with synchronous, soft-updates, and journaling metadata.
"""

import pytest

from repro.cache.policy import MetadataPolicy
from repro.errors import ReproError
from repro.faults.harness import (
    Checkpoint,
    crash_point_sweep,
    render_sweep,
    run_journaled_workload,
)

ALL_POLICIES = (MetadataPolicy.SYNC_METADATA, MetadataPolicy.DELAYED_METADATA,
                MetadataPolicy.JOURNAL_METADATA)


def assert_recovered(result):
    assert result.all_recovered, render_sweep([result])


class TestWorkload:
    def test_checkpoints_monotonic(self):
        device, checkpoints = run_journaled_workload("cffs", n_files=12)
        lens = [c.journal_len for c in checkpoints]
        assert lens == sorted(lens)
        assert lens[-1] == len(device.journal)
        assert checkpoints[0].files == {}
        assert checkpoints[-1].files  # something survived the churn

    def test_workload_deterministic(self):
        _, a = run_journaled_workload("ffs", n_files=12, seed=5)
        _, b = run_journaled_workload("ffs", n_files=12, seed=5)
        assert [(c.journal_len, c.files) for c in a] == \
               [(c.journal_len, c.files) for c in b]

    def test_unknown_label_rejected(self):
        with pytest.raises(ReproError):
            run_journaled_workload("ntfs")


class TestSweepFast:
    @pytest.mark.parametrize("label", ["ffs", "cffs"])
    @pytest.mark.parametrize("policy", ALL_POLICIES,
                             ids=[p.value for p in ALL_POLICIES])
    def test_subsampled_sweep_recovers(self, label, policy):
        result = crash_point_sweep(label, policy=policy, n_files=12, stride=7)
        assert result.n_points > 5
        assert_recovered(result)

    def test_sweep_includes_final_write(self):
        result = crash_point_sweep("cffs", n_files=8, stride=17)
        assert result.points[-1].k == result.total_writes

    def test_sweep_deterministic(self):
        a = crash_point_sweep("ffs", n_files=8, stride=11, seed=3)
        b = crash_point_sweep("ffs", n_files=8, stride=11, seed=3)
        assert a.points == b.points
        assert a.total_writes == b.total_writes

    def test_mid_op_crashes_need_repair(self):
        # At least some crash points must actually exercise repair —
        # otherwise the sweep proves nothing.
        result = crash_point_sweep("ffs", n_files=12, stride=3)
        assert result.total_fixes > 0
        assert any(p.first_errors or p.first_repairs for p in result.points)

    def test_render_mentions_verdict(self):
        result = crash_point_sweep("cffs", n_files=6, stride=19)
        text = render_sweep([result])
        assert "recovered %d/%d" % (result.n_recovered, result.n_points) in text
        assert "OK" in text

    def test_bad_stride_rejected(self):
        with pytest.raises(ReproError):
            crash_point_sweep("ffs", stride=0)


@pytest.mark.slow
class TestSweepAcceptance:
    """The PR's acceptance bar: exhaustive sweep, 50 files, both
    formats, all three metadata policies — 100% recovery."""

    @pytest.mark.parametrize("label", ["ffs", "cffs"])
    @pytest.mark.parametrize("policy", ALL_POLICIES,
                             ids=[p.value for p in ALL_POLICIES])
    def test_full_sweep_100_percent(self, label, policy):
        result = crash_point_sweep(label, policy=policy, n_files=50, stride=1)
        assert result.n_points == result.total_writes - result.journal_base + 1
        assert_recovered(result)
