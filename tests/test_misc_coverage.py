"""Coverage for remaining corners: config grid, CLI regroup, image
edge cases, drive idle drains, zone-boundary transfers, breakdown
driver."""


import pytest

from repro.blockdev.device import BLOCK_SIZE, BlockDevice
from repro.cache.policy import MetadataPolicy
from repro.cli import main
from repro.core.filesystem import CFFSConfig
from repro.disk.drive import SimulatedDisk
from repro.errors import InvalidArgument
from repro.workloads.configs import CONFIG_GRID, config_for, grid_labels
from tests.conftest import TEST_PROFILE, make_cffs


class TestConfigGrid:
    def test_four_configurations(self):
        assert set(grid_labels()) == {"conventional", "embedded", "grouping", "cffs"}

    def test_flags_match_labels(self):
        assert CONFIG_GRID["conventional"] == (False, False)
        assert CONFIG_GRID["cffs"] == (True, True)

    def test_config_for_builds_matching_config(self):
        cfg = config_for("embedded", MetadataPolicy.DELAYED_METADATA)
        assert cfg.embedded_inodes is True
        assert cfg.explicit_grouping is False
        assert cfg.policy is MetadataPolicy.DELAYED_METADATA

    def test_config_labels(self):
        assert CFFSConfig().label == "cffs"
        assert CFFSConfig(embedded_inodes=False).label == "ffs+group"
        assert CFFSConfig(explicit_grouping=False).label == "ffs+embed"
        assert CFFSConfig(embedded_inodes=False,
                          explicit_grouping=False).label == "conventional"

    def test_overrides_forwarded(self):
        cfg = config_for("cffs", group_span=8, cache_blocks=256)
        assert cfg.group_span == 8
        assert cfg.cache_blocks == 256


class TestDriveCorners:
    def test_read_across_zone_boundary(self):
        disk = SimulatedDisk(TEST_PROFILE)
        # TEST_PROFILE zone 0: 100 cyls x 4 heads x 40 spt = 16000 sectors.
        boundary = 100 * 4 * 40
        disk.read(boundary - 16, 32)  # spans the zone change
        assert disk.clock.now > 0

    def test_read_of_last_sectors(self):
        disk = SimulatedDisk(TEST_PROFILE)
        disk.read(disk.total_sectors - 8, 8)
        assert disk.stats.reads == 1

    def test_idle_lets_background_drain(self):
        disk = SimulatedDisk(TEST_PROFILE)
        for i in range(8):
            disk.write(1000 + i * 640, 8)
        assert not disk.write_buffer.empty
        disk.idle(2.0)
        assert disk.write_buffer.empty

    def test_multi_track_transfer_charges_switches(self):
        disk = SimulatedDisk(TEST_PROFILE.with_overrides(
            cache_segments=0, readahead_sectors=0, write_cache=False,
        ))
        # 120 sectors spans 3 tracks of 40 in zone 0.
        disk.read(0, 120)
        single = SimulatedDisk(TEST_PROFILE.with_overrides(
            cache_segments=0, readahead_sectors=0, write_cache=False,
        ))
        single.read(0, 30)
        assert disk.stats.transfer_time > single.stats.transfer_time * 3


class TestImageEdgeCases:
    def test_truncated_payload_rejected(self, tmp_path):
        device = BlockDevice(TEST_PROFILE)
        device.poke_block(3, b"d" * BLOCK_SIZE)
        path = str(tmp_path / "x.img")
        device.save_image(path)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:-20])
        with pytest.raises(Exception):
            BlockDevice.load_image(path, profile=TEST_PROFILE)

    def test_wrong_profile_capacity_rejected(self, tmp_path):
        device = BlockDevice(TEST_PROFILE)
        path = str(tmp_path / "x.img")
        device.save_image(path)
        small = TEST_PROFILE.with_overrides(
            name="smaller", zone_table=((50, 40), (50, 24)),
        )
        with pytest.raises(InvalidArgument):
            BlockDevice.load_image(path, profile=small)


class TestCliRegroup:
    def test_regroup_command(self, tmp_path, capsys):
        image = str(tmp_path / "r.img")
        assert main(["mkfs", image]) == 0
        assert main(["mkdir", image, "/d"]) == 0
        host = tmp_path / "payload"
        host.write_bytes(b"q" * 3000)
        assert main(["put", image, str(host), "/d/a"]) == 0
        assert main(["regroup", image, "/d"]) == 0
        out = capsys.readouterr().out
        assert "moved" in out
        assert main(["fsck", image]) == 0

    def test_regroup_rejects_ffs(self, tmp_path, capsys):
        image = str(tmp_path / "f.img")
        assert main(["mkfs", image, "--fs", "ffs"]) == 0
        assert main(["regroup", image, "/"]) == 2


class TestBreakdownDriver:
    def test_breakdown_shapes(self):
        from repro.bench import breakdown_read_time

        out = breakdown_read_time(n_files=300)
        rows = out.data["rows"]
        conv = rows["conventional"]
        cffs = rows["cffs"]
        conv_pos = conv["seek"] + conv["rotation"]
        cffs_pos = cffs["seek"] + cffs["rotation"]
        assert conv_pos > cffs_pos
        assert "positioning share" in out.text


class TestHintedSiteDeterminism:
    def test_build_site_deterministic(self):
        from repro.workloads.hypertext import build_site

        a = build_site(make_cffs(), n_documents=6)
        b = build_site(make_cffs(), n_documents=6)
        assert [d.paths for d in a] == [d.paths for d in b]
        assert [d.total_bytes for d in a] == [d.total_bytes for d in b]
