"""Tests for device-image persistence and the command-line interface."""

import os

import pytest

from repro.blockdev.device import BLOCK_SIZE, BlockDevice
from repro.cli import main
from repro.core.filesystem import CFFS
from repro.errors import InvalidArgument
from tests.conftest import TEST_PROFILE, make_cffs


class TestImages:
    def test_roundtrip(self, tmp_path):
        device = BlockDevice(TEST_PROFILE)
        device.poke_block(5, b"five" * 1024)
        device.poke_block(900, b"nine" * 1024)
        path = str(tmp_path / "dev.img")
        device.save_image(path)
        back = BlockDevice.load_image(path, profile=TEST_PROFILE)
        assert back.peek_block(5) == b"five" * 1024
        assert back.peek_block(900) == b"nine" * 1024
        assert back.peek_block(6) == bytes(BLOCK_SIZE)
        assert back.total_blocks == device.total_blocks

    def test_sparse(self, tmp_path):
        device = BlockDevice(TEST_PROFILE)
        device.poke_block(0, bytes(BLOCK_SIZE))
        path = str(tmp_path / "dev.img")
        device.save_image(path)
        assert os.path.getsize(path) < 4096  # compressed, sparse

    def test_not_an_image(self, tmp_path):
        path = str(tmp_path / "junk")
        with open(path, "wb") as handle:
            handle.write(b"not an image at all")
        with pytest.raises(InvalidArgument):
            BlockDevice.load_image(path)

    def test_filesystem_survives_image_roundtrip(self, tmp_path):
        fs = make_cffs()
        fs.mkdir("/d")
        fs.write_file("/d/file", b"persisted" * 100)
        fs.sync()
        path = str(tmp_path / "fs.img")
        fs.device.save_image(path)
        device = BlockDevice.load_image(path, profile=TEST_PROFILE)
        remounted = CFFS.mount(device)
        assert remounted.read_file("/d/file") == b"persisted" * 100

    def test_mount_derives_config_from_superblock(self, tmp_path):
        fs = make_cffs(grouping=False)
        fs.create("/marker")
        fs.sync()
        path = str(tmp_path / "fs.img")
        fs.device.save_image(path)
        device = BlockDevice.load_image(path, profile=TEST_PROFILE)
        remounted = CFFS.mount(device)  # no config passed
        assert remounted.config.explicit_grouping is False
        assert remounted.config.embedded_inodes is True
        assert remounted.exists("/marker")


class TestCli:
    def img(self, tmp_path) -> str:
        path = str(tmp_path / "cli.img")
        assert main(["mkfs", path]) == 0
        return path

    def test_mkfs_and_info(self, tmp_path, capsys):
        self.img(tmp_path)
        out = capsys.readouterr().out
        assert "cffs" in out

    def test_put_ls_get_roundtrip(self, tmp_path, capsys):
        image = self.img(tmp_path)
        host = tmp_path / "hello.txt"
        host.write_bytes(b"hello from the host\n")
        assert main(["put", image, str(host), "/hello"]) == 0
        assert main(["ls", image, "/"]) == 0
        out = capsys.readouterr().out
        assert "hello" in out
        dest = tmp_path / "back.txt"
        assert main(["get", image, "/hello", str(dest)]) == 0
        assert dest.read_bytes() == b"hello from the host\n"

    def test_mkdir_stat(self, tmp_path, capsys):
        image = self.img(tmp_path)
        assert main(["mkdir", image, "/sub"]) == 0
        assert main(["stat", image, "/sub"]) == 0
        out = capsys.readouterr().out
        assert "directory" in out

    def test_rm(self, tmp_path, capsys):
        image = self.img(tmp_path)
        host = tmp_path / "f"
        host.write_bytes(b"x")
        main(["put", image, str(host), "/f"])
        assert main(["rm", image, "/f"]) == 0
        capsys.readouterr()
        main(["ls", image, "/"])
        assert capsys.readouterr().out.strip() == ""  # directory now empty

    def test_fsck_clean(self, tmp_path, capsys):
        image = self.img(tmp_path)
        assert main(["fsck", image]) == 0
        assert "clean" in capsys.readouterr().out

    def test_fsck_detects_corruption(self, tmp_path, capsys):
        image = self.img(tmp_path)
        host = tmp_path / "f"
        host.write_bytes(b"payload" * 100)
        main(["put", image, str(host), "/f"])
        device = BlockDevice.load_image(image)
        block = bytearray(device.peek_block(0))
        block[0] ^= 0xFF
        device.poke_block(0, bytes(block))
        device.save_image(image)
        assert main(["fsck", image]) == 2  # unrecognizable magic

    def test_ffs_images(self, tmp_path, capsys):
        path = str(tmp_path / "ffs.img")
        assert main(["mkfs", path, "--fs", "ffs"]) == 0
        host = tmp_path / "f"
        host.write_bytes(b"ffs data")
        assert main(["put", path, str(host), "/f"]) == 0
        assert main(["get", path, "/f", str(tmp_path / "out")]) == 0
        assert (tmp_path / "out").read_bytes() == b"ffs data"
        assert main(["fsck", path]) == 0

    def test_technique_flags(self, tmp_path, capsys):
        path = str(tmp_path / "plain.img")
        assert main(["mkfs", path, "--no-embed", "--no-group"]) == 0
        assert main(["info", path]) == 0
        out = capsys.readouterr().out
        assert "embedded=False grouping=False" in out

    def test_bench_runs(self, capsys):
        assert main(["bench", "--files", "150", "--configs", "cffs"]) == 0
        assert "create" in capsys.readouterr().out

    def test_missing_image(self, tmp_path, capsys):
        assert main(["ls", str(tmp_path / "nope.img")]) == 1

    def test_unknown_profile(self, tmp_path, capsys):
        assert main(["mkfs", str(tmp_path / "x.img"), "--profile", "Floppy"]) == 2
