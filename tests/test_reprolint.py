"""reprolint rule tests: each rule has a trigger and a non-trigger
fixture, suppression directives are honoured, and the JSON reporter is
byte-stable."""

import json

import pytest

from repro.errors import ReproError
from repro.lint import lint_sources, rule_catalog
from repro.lint.core import LintError, module_name_of
from repro.lint.reporters import render_json, render_text
from repro.lint.rules.structfmt import count_format_values


def rules_of(result, suppressed=None):
    """Set of rule ids among the result's findings.

    suppressed=None counts all findings; True/False filters.
    """
    return {
        f.rule
        for f in result.findings
        if suppressed is None or f.suppressed is suppressed
    }


# -- harness basics -----------------------------------------------------------


def test_module_name_derivation():
    assert module_name_of("src/repro/ffs/alloc.py") == "repro.ffs.alloc"
    assert module_name_of("src/repro/cli.py") == "repro.cli"
    assert module_name_of("src/repro/ffs/__init__.py") == "repro.ffs"
    assert module_name_of("scratch.py") == "scratch"


def test_syntax_error_raises_lint_error():
    with pytest.raises(LintError):
        lint_sources({"src/repro/ffs/bad.py": "def broken(:\n"})


def test_unknown_rule_id_rejected():
    with pytest.raises(LintError):
        lint_sources({"src/repro/ok.py": "x = 1\n"}, rule_ids=["Z999"])


def test_rule_catalog_lists_all_rules():
    assert set(rule_catalog()) == {
        "L001", "D001", "E001", "F001", "M001", "S001",  # AST rules
        "B001", "J001", "O001",                          # flow rules
    }


# -- L001 layering ------------------------------------------------------------


def test_l001_ffs_importing_disk_is_flagged():
    # The ISSUE's canary: reintroducing a direct disk import in the
    # file-system layer must fail the lint run.
    result = lint_sources({
        "src/repro/ffs/filesystem.py": "from repro.disk.drive import Drive\n",
    })
    assert "L001" in rules_of(result, suppressed=False)
    assert not result.ok


def test_l001_respects_layer_dag():
    result = lint_sources({
        "src/repro/cache/buffercache.py": (
            "from repro.blockdev.device import BlockDevice\n"
        ),
        "src/repro/blockdev/device.py": "from repro.disk.drive import Drive\n",
    })
    assert result.ok


def test_l001_structural_names_allowed_io_device_import_not():
    ok = lint_sources({
        "src/repro/ffs/layout.py": (
            "from repro.blockdev.device import BLOCK_SIZE, BlockDevice\n"
        ),
    })
    assert ok.ok
    bad = lint_sources({
        "src/repro/vfs/interface.py": (
            "from repro.blockdev.device import request_cost\n"
        ),
    })
    assert "L001" in rules_of(bad, suppressed=False)


def test_l001_direct_device_io_call_flagged_cache_access_not():
    bad = lint_sources({
        "src/repro/core/filesystem.py": (
            "class FS:\n"
            "    def read(self, bno):\n"
            "        return self.cache.device.read_block(bno)\n"
        ),
    })
    assert "L001" in rules_of(bad, suppressed=False)
    ok = lint_sources({
        "src/repro/core/filesystem.py": (
            "class FS:\n"
            "    def read(self, bno):\n"
            "        return self.cache.get(bno).data\n"
        ),
    })
    assert ok.ok


def test_l001_workloads_must_stay_above_vfs():
    result = lint_sources({
        "src/repro/workloads/smallfile.py": (
            "from repro.vfs.interface import VFS\n"
            "from repro.cache.buffercache import BufferCache\n"
        ),
    })
    flagged = [f for f in result.unsuppressed if f.rule == "L001"]
    assert len(flagged) == 1
    assert "buffercache" in flagged[0].message


def test_l001_utility_modules_importable_everywhere():
    result = lint_sources({
        "src/repro/disk/drive.py": (
            "from repro.errors import ReproError\nfrom repro.clock import SimClock\n"
        ),
    })
    assert result.ok


def test_l001_obs_importable_from_every_layer():
    result = lint_sources({
        "src/repro/disk/drive.py": "from repro import obs\n",
        "src/repro/cache/buffercache.py": "from repro import obs\n",
        "src/repro/vfs/interface.py": "from repro import obs\n",
        "src/repro/core/filesystem.py": "from repro import obs\n",
        "src/repro/engine/diskqueue.py": "from repro import obs\n",
    })
    assert result.ok


def test_l001_obs_itself_must_stay_a_leaf():
    ok = lint_sources({
        "src/repro/obs/tracer.py": (
            "from repro.clock import SimClock\n"
            "from repro.errors import InvalidArgument\n"
        ),
    })
    assert ok.ok
    bad = lint_sources({
        "src/repro/obs/tracer.py": (
            "from repro.cache.buffercache import BufferCache\n"
        ),
    })
    flagged = [f for f in bad.unsuppressed if f.rule == "L001"]
    assert len(flagged) == 1
    assert "obs" in flagged[0].message


def test_l001_journal_layer_dependencies():
    # The crash-consistency subsystem sits between the cache and the
    # file systems: it may drive the device and the cache (it IS the
    # cache's write pipeline) and reuse the resilience checksums...
    ok = lint_sources({
        "src/repro/journal/wal.py": (
            "from repro.blockdev.device import BlockDevice\n"
            "from repro.cache.buffercache import BufferCache\n"
            "from repro.resilience.checksums import crc32c\n"
        ),
        "src/repro/ffs/base.py": "from repro.journal import attach_pipeline\n",
        "src/repro/fsck/checker.py": "from repro.journal import replay_journal\n",
    })
    assert ok.ok
    # ...but must never reach up into the formats that depend on it
    # (geometry is handed in by the callers, keeping the DAG acyclic).
    bad = lint_sources({
        "src/repro/journal/recovery.py": (
            "from repro.ffs import layout as flayout\n"
            "from repro.core import layout as clayout\n"
        ),
    })
    flagged = [f for f in bad.unsuppressed if f.rule == "L001"]
    assert len(flagged) == 2
    assert all("journal" in f.message for f in flagged)


# -- D001 determinism ---------------------------------------------------------


def test_d001_wall_clock_flagged():
    result = lint_sources({
        "src/repro/engine/run.py": (
            "import time\n\ndef now():\n    return time.time()\n"
        ),
    })
    assert "D001" in rules_of(result, suppressed=False)


def test_d001_module_level_random_flagged_seeded_rng_not():
    bad = lint_sources({
        "src/repro/workloads/gen.py": (
            "import random\n\ndef pick():\n    return random.randint(0, 9)\n"
        ),
    })
    assert "D001" in rules_of(bad, suppressed=False)
    ok = lint_sources({
        "src/repro/workloads/gen.py": (
            "import random\n\n"
            "def make_rng(seed):\n    return random.Random(seed)\n"
        ),
    })
    assert ok.ok


def test_d001_datetime_now_flagged():
    result = lint_sources({
        "src/repro/analysis/report.py": (
            "import datetime\n\n"
            "def stamp():\n    return datetime.datetime.now()\n"
        ),
    })
    assert "D001" in rules_of(result, suppressed=False)


def test_d001_simclock_usage_clean():
    result = lint_sources({
        "src/repro/engine/run.py": (
            "from repro.clock import SimClock\n\n"
            "def now(clock):\n    return clock.now()\n"
        ),
    })
    assert result.ok


def test_d001_tracer_simclock_stamping_clean():
    # The tracer stamps spans from the shared SimClock — the exact
    # pattern obs uses.  D001 must not mistake it for wall-clock use.
    result = lint_sources({
        "src/repro/obs/tracer.py": (
            "from repro.clock import SimClock\n\n"
            "class Tracer:\n"
            "    def __init__(self, clock=None):\n"
            "        self.clock = clock if clock is not None else SimClock()\n"
            "    def _enter(self, span):\n"
            "        span.start = self.clock.now\n"
            "    def _exit(self, span):\n"
            "        span.end = self.clock.now\n"
        ),
    })
    assert result.ok


# -- E001 error taxonomy ------------------------------------------------------


def test_e001_bare_except_and_generic_raise_flagged():
    result = lint_sources({
        "src/repro/fsck/checker.py": (
            "def scan():\n"
            "    try:\n"
            "        pass\n"
            "    except:\n"
            "        raise Exception('boom')\n"
        ),
    })
    findings = [f for f in result.unsuppressed if f.rule == "E001"]
    assert len(findings) == 2


def test_e001_taxonomy_and_contract_errors_clean():
    result = lint_sources({
        "src/repro/fsck/checker.py": (
            "from repro.errors import ReproError\n\n"
            "def scan(n):\n"
            "    if n < 0:\n"
            "        raise ValueError('negative')\n"
            "    try:\n"
            "        pass\n"
            "    except ReproError:\n"
            "        raise\n"
        ),
    })
    assert result.ok


def test_e001_resilience_errors_are_registered():
    # The self-healing additions are part of the taxonomy E001 reads
    # from the live errors module.
    from repro.lint.rules.errors_rule import TAXONOMY

    assert {"ChecksumError", "DeviceDegraded", "ReadOnlyFileSystem",
            "LintError", "ReproError"} <= TAXONOMY
    result = lint_sources({
        "src/repro/resilience/device.py": (
            "from repro.errors import ChecksumError, ReadOnlyFileSystem\n\n"
            "def verify(ok):\n"
            "    if not ok:\n"
            "        raise ChecksumError('mismatch')\n"
            "    try:\n"
            "        pass\n"
            "    except (ChecksumError, ReadOnlyFileSystem):\n"
            "        raise\n"
        ),
    })
    assert result.ok


def test_e001_broad_except_exception_flagged():
    result = lint_sources({
        "src/repro/faults/chaos.py": (
            "def soak():\n"
            "    try:\n"
            "        pass\n"
            "    except (ValueError, Exception):\n"
            "        pass\n"
        ),
    })
    findings = [f for f in result.unsuppressed if f.rule == "E001"]
    assert len(findings) == 1
    assert "as broad as a bare except" in findings[0].message


def test_e001_exception_class_outside_taxonomy_flagged():
    result = lint_sources({
        "src/repro/resilience/device.py": (
            "from repro.errors import MediaError\n\n"
            "class ScrubFailed(MediaError):\n"
            "    pass\n"
        ),
    })
    findings = [f for f in result.unsuppressed if f.rule == "E001"]
    assert len(findings) == 1
    assert "register it in the central taxonomy" in findings[0].message


def test_e001_classes_inside_errors_module_allowed():
    result = lint_sources({
        "src/repro/errors.py": (
            "class ReproError(Exception):\n"
            "    pass\n\n"
            "class ScrubFailed(ReproError):\n"
            "    pass\n"
        ),
    })
    assert result.ok


def test_e001_shard_context_annotation_idiom_is_clean():
    # The cluster facade's error-mapping idiom: catch a taxonomy tuple,
    # stamp shard context onto the exception, re-raise it unchanged.
    # E001 must accept it — the taxonomy type survives, only the
    # message and the ``shard`` attribute gain context.
    result = lint_sources({
        "src/repro/cluster/facade.py": (
            "from repro.errors import MediaWriteError, ReproError\n\n"
            "def shard_call(shard, fn):\n"
            "    try:\n"
            "        return fn()\n"
            "    except MediaWriteError as exc:\n"
            "        exc.shard = shard.sid\n"
            "        exc.args = ('s%d: %s' % (shard.sid, exc),)\n"
            "        raise\n"
            "    except ReproError as exc:\n"
            "        exc.shard = shard.sid\n"
            "        raise exc\n"
        ),
    })
    assert result.ok


def test_e001_swallowing_a_taxonomy_tuple_still_needs_narrow_types():
    # Widening the same idiom's catch to Exception must still trip.
    result = lint_sources({
        "src/repro/cluster/facade.py": (
            "def shard_call(shard, fn):\n"
            "    try:\n"
            "        return fn()\n"
            "    except Exception as exc:\n"
            "        exc.shard = shard.sid\n"
            "        raise\n"
        ),
    })
    findings = [f for f in result.unsuppressed if f.rule == "E001"]
    assert len(findings) == 1


# -- F001 struct formats ------------------------------------------------------


def test_count_format_values():
    assert count_format_values("<IHBB") == 4
    assert count_format_values("<I 4x H") == 2  # pad bytes consume nothing
    assert count_format_values("<3I 8s") == 4  # s is one value despite count
    assert count_format_values("<2H3B") == 5


def test_f001_missing_endianness_flagged():
    result = lint_sources({
        "src/repro/ffs/layout.py": (
            "import struct\n\n"
            "def pack(a, b):\n    return struct.pack('IH', a, b)\n"
        ),
    })
    findings = [f for f in result.unsuppressed if f.rule == "F001"]
    assert len(findings) == 1
    assert "byte-order" in findings[0].message


def test_f001_arity_mismatch_flagged():
    result = lint_sources({
        "src/repro/ffs/layout.py": (
            "import struct\n\n"
            "def pack(a):\n    return struct.pack('<IH', a)\n"
        ),
    })
    assert any(
        f.rule == "F001" and "2 value" in f.message for f in result.unsuppressed
    )


def test_f001_resolves_constant_across_modules():
    result = lint_sources({
        "src/repro/ffs/layout.py": (
            "HEADER_FMT = '<IHBB'\n"
        ),
        "src/repro/fsck/checker.py": (
            "import struct\n"
            "from repro.ffs.layout import HEADER_FMT\n\n"
            "def parse(raw):\n"
            "    a, b = struct.unpack(HEADER_FMT, raw)\n"
            "    return a, b\n"
        ),
    })
    assert any(
        f.rule == "F001" and "4 value" in f.message for f in result.unsuppressed
    )


def test_f001_correct_usage_clean():
    result = lint_sources({
        "src/repro/ffs/layout.py": (
            "import struct\n\n"
            "FMT = '<IHBB'\n"
            "S = struct.Struct('<2I')\n\n"
            "def roundtrip(a, b, c, d):\n"
            "    raw = struct.pack(FMT, a, b, c, d)\n"
            "    w, x, y, z = struct.unpack(FMT, raw)\n"
            "    return S.pack(w, x)\n"
        ),
    })
    assert result.ok


# -- M001 derived metadata ----------------------------------------------------


def test_m001_free_count_mutation_outside_allocator_flagged():
    result = lint_sources({
        "src/repro/core/filesystem.py": (
            "class FS:\n"
            "    def grab(self):\n"
            "        self.sb['free_blocks'] -= 1\n"
        ),
    })
    assert "M001" in rules_of(result, suppressed=False)


def test_m001_bitmap_call_outside_allocator_flagged():
    result = lint_sources({
        "src/repro/vfs/interface.py": (
            "from repro.ffs.cylgroup import set_bit\n\n"
            "def claim(bitmap, i):\n    set_bit(bitmap, i)\n"
        ),
    })
    assert any(f.rule == "M001" for f in result.unsuppressed)


def test_m001_allocator_and_fsck_may_mutate():
    result = lint_sources({
        "src/repro/ffs/alloc.py": (
            "from repro.ffs.cylgroup import set_bit\n\n"
            "class Alloc:\n"
            "    def take(self, bitmap, i):\n"
            "        set_bit(bitmap, i)\n"
            "        self.counts['free_blocks'] -= 1\n"
        ),
        "src/repro/fsck/repair.py": (
            "def rebuild(sb, computed):\n"
            "    sb['free_blocks'] = computed\n"
        ),
    })
    assert result.ok


# -- suppression --------------------------------------------------------------


def test_same_line_suppression():
    result = lint_sources({
        "src/repro/ffs/filesystem.py": (
            "from repro.disk.drive import Drive"
            "  # reprolint: disable=L001 -- fixture\n"
        ),
    })
    assert result.ok
    assert "L001" in rules_of(result, suppressed=True)


def test_comment_line_suppresses_next_line_only():
    result = lint_sources({
        "src/repro/ffs/filesystem.py": (
            "# reprolint: disable=L001 -- fixture\n"
            "from repro.disk.drive import Drive\n"
            "from repro.disk.profiles import SEAGATE_ST31200\n"
        ),
    })
    assert len(result.suppressed) == 1
    assert len(result.unsuppressed) == 1


def test_file_wide_suppression():
    result = lint_sources({
        "src/repro/ffs/filesystem.py": (
            "# reprolint: disable-file=L001 -- fixture\n"
            "from repro.disk.drive import Drive\n"
            "from repro.disk.profiles import SEAGATE_ST31200\n"
        ),
    })
    assert result.ok
    assert len(result.suppressed) == 2


def test_suppression_is_per_rule():
    # A D001 directive must not hide an L001 finding on the same line.
    result = lint_sources({
        "src/repro/ffs/filesystem.py": (
            "from repro.disk.drive import Drive  # reprolint: disable=D001\n"
        ),
    })
    assert "L001" in rules_of(result, suppressed=False)


# -- S001 suppression hygiene -------------------------------------------------


def test_s001_bare_suppression_is_a_finding():
    result = lint_sources({
        "src/repro/ffs/filesystem.py": (
            "from repro.disk.drive import Drive  # reprolint: disable=L001\n"
        ),
    })
    assert "S001" in rules_of(result, suppressed=False)
    assert not result.ok


def test_s001_rationale_clears_the_finding():
    result = lint_sources({
        "src/repro/ffs/filesystem.py": (
            "from repro.disk.drive import Drive"
            "  # reprolint: disable=L001 -- factory assembles the stack\n"
        ),
    })
    assert "S001" not in rules_of(result)
    assert result.ok


def test_s001_rationale_separator_is_optional():
    # Prose straight after the ids counts; the -- separator is style.
    result = lint_sources({
        "src/repro/ffs/filesystem.py": (
            "from repro.disk.drive import Drive"
            "  # reprolint: disable=L001 factory wiring only\n"
        ),
    })
    assert "S001" not in rules_of(result)


def test_s001_applies_to_file_wide_directives():
    result = lint_sources({
        "src/repro/ffs/filesystem.py": (
            "# reprolint: disable-file=L001\n"
            "from repro.disk.drive import Drive\n"
        ),
    })
    assert "S001" in rules_of(result, suppressed=False)


def test_directive_in_docstring_is_not_a_directive():
    # The suppression scanner reads comment tokens, so directive-shaped
    # text inside a docstring neither suppresses nor trips S001.
    result = lint_sources({
        "src/repro/ffs/filesystem.py": (
            '"""Docs: use ``# reprolint: disable=L001`` to suppress."""\n'
            "from repro.disk.drive import Drive\n"
        ),
    })
    assert "S001" not in rules_of(result)
    assert "L001" in rules_of(result, suppressed=False)


# -- deterministic report order ----------------------------------------------


def test_findings_sorted_by_path_line_rule():
    from repro.lint.core import Finding, findings_sorted

    def f(path, line, rule, col):
        return Finding(rule=rule, message="m", path=path,
                       module="repro.x", line=line, col=col)

    shuffled = [
        f("b.py", 1, "L001", 0),
        f("a.py", 2, "D001", 9),
        f("a.py", 2, "A001", 30),  # later col, earlier rule id
        f("a.py", 1, "L001", 0),
    ]
    ordered = findings_sorted(shuffled)
    key = [(x.path, x.line, x.rule) for x in ordered]
    assert key == [
        ("a.py", 1, "L001"),
        ("a.py", 2, "A001"),
        ("a.py", 2, "D001"),
        ("b.py", 1, "L001"),
    ]


# -- reporters ---------------------------------------------------------------


def test_text_reporter_format():
    result = lint_sources({
        "src/repro/ffs/filesystem.py": "from repro.disk.drive import Drive\n",
    })
    text = render_text(result)
    assert "src/repro/ffs/filesystem.py:1:1: L001" in text
    assert text.splitlines()[-1] == (
        "checked 1 file(s), 6 rule(s): 1 finding(s), 0 suppressed"
    )


def test_json_reporter_golden():
    result = lint_sources(
        {
            "src/repro/ffs/filesystem.py": (
                "from repro.disk.drive import Drive\n"
            ),
        },
        rule_ids=["L001"],
    )
    payload = json.loads(render_json(result))
    assert payload == {
        "tool": "reprolint",
        "rules": {
            "L001": "layering: imports and device I/O must follow the layer DAG"
        },
        "files_checked": 1,
        "findings": [
            {
                "rule": "L001",
                "message": (
                    "repro.ffs.filesystem imports repro.disk.drive: layer "
                    "'ffs' may only depend on cache, clock, errors, journal, "
                    "obs, vfs"
                ),
                "path": "src/repro/ffs/filesystem.py",
                "module": "repro.ffs.filesystem",
                "line": 1,
                "col": 1,
                "suppressed": False,
            }
        ],
        "counts": {"unsuppressed": 1, "suppressed": 0},
        "ok": False,
    }
    # Stable output: serialising twice is byte-identical.
    assert render_json(result) == render_json(result)


def test_lint_error_is_repro_error():
    assert issubclass(LintError, ReproError)
