"""Tests for the PostMark-style workload."""


from repro.fsck import fsck_cffs
from repro.workloads.postmark import PostmarkConfig, run_postmark
from tests.conftest import make_cffs

SMALL = PostmarkConfig(n_files=60, n_transactions=150, n_dirs=3)


class TestPostmark:
    def test_runs_and_times_all_phases(self):
        fs = make_cffs()
        result = run_postmark(fs, SMALL)
        assert result.create_seconds > 0
        assert result.transaction_seconds > 0
        assert result.delete_seconds > 0

    def test_transaction_mix(self):
        fs = make_cffs()
        result = run_postmark(fs, SMALL)
        total = result.reads + result.appends + result.creates + result.deletes
        assert total == SMALL.n_transactions
        assert result.reads > 0
        assert result.appends > 0
        assert result.creates > 0
        assert result.deletes > 0

    def test_pool_fully_deleted(self):
        fs = make_cffs()
        run_postmark(fs, SMALL)
        for d in range(SMALL.n_dirs):
            assert fs.readdir("/postmark/d%03d" % d) == []

    def test_image_clean_afterwards(self):
        fs = make_cffs()
        run_postmark(fs, SMALL)
        report = fsck_cffs(fs.device)
        assert report.ok, report.render()

    def test_deterministic(self):
        a = run_postmark(make_cffs(), SMALL)
        b = run_postmark(make_cffs(), SMALL)
        assert a.total_seconds == b.total_seconds
        assert a.disk_requests == b.disk_requests

    def test_different_seeds_differ(self):
        a = run_postmark(make_cffs(), SMALL)
        b = run_postmark(make_cffs(), PostmarkConfig(
            n_files=60, n_transactions=150, n_dirs=3, seed=2024,
        ))
        assert a.total_seconds != b.total_seconds

    def test_appends_grow_files(self):
        fs = make_cffs()
        cfg = PostmarkConfig(n_files=40, n_transactions=100, n_dirs=2,
                             read_bias=0.0, data_fraction=1.0)
        result = run_postmark(fs, cfg)
        assert result.appends == 100
        assert result.reads == 0
