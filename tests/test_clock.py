"""Tests for the simulated clock and CPU cost model."""

import pytest

from repro.clock import CpuModel, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_zero_is_noop(self):
        clock = SimClock(3.0)
        clock.advance(0.0)
        assert clock.now == 3.0

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(7.0)
        assert clock.now == 7.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(10.0)
        clock.advance_to(4.0)
        assert clock.now == 10.0

    def test_reset(self):
        clock = SimClock(9.0)
        clock.reset()
        assert clock.now == 0.0


class TestCpuModel:
    def test_syscall_charges_time(self):
        clock = SimClock()
        cpu = CpuModel(clock, syscall_us=20.0)
        cpu.charge_syscall()
        assert clock.now == pytest.approx(20e-6)

    def test_copy_scales_with_bytes(self):
        clock = SimClock()
        cpu = CpuModel(clock, copy_us_per_kb=25.0)
        cpu.charge_copy(4096)
        assert clock.now == pytest.approx(100e-6)

    def test_copy_of_nothing_is_free(self):
        clock = SimClock()
        CpuModel(clock).charge_copy(0)
        assert clock.now == 0.0

    def test_dirent_scan_scales_with_entries(self):
        clock = SimClock()
        cpu = CpuModel(clock, dirent_scan_ns=400.0)
        cpu.charge_dirent_scan(1000)
        assert clock.now == pytest.approx(400e-9 * 1000)
