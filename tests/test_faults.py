"""Fault-injection device tests: schedules, proxy semantics, recovery.

The proxy must be a perfect no-op without a schedule, absorb transient
faults with only a latency cost, land *nothing* on a hard write fault,
land exactly the declared prefix on a torn write, and go dead after a
power cut.  File systems running over a transiently-faulty device must
come out fsck-pristine — faults the drive absorbs are invisible.
"""

import pytest

from repro.blockdev.device import BLOCK_SIZE, BlockDevice
from repro.errors import MediaReadError, MediaWriteError, PowerLoss
from repro.faults import (
    HARD,
    OK,
    TORN,
    TRANSIENT,
    FaultSchedule,
    FaultyBlockDevice,
    RetryPolicy,
)
from repro.fsck import fsck_cffs, fsck_ffs
from tests.conftest import TEST_PROFILE, make_cffs, make_ffs


def block(tag: int) -> bytes:
    return bytes([tag & 0xFF]) * BLOCK_SIZE


def proxy(schedule=None, retry=None, journal=False) -> FaultyBlockDevice:
    return FaultyBlockDevice(BlockDevice(TEST_PROFILE), schedule=schedule,
                             retry=retry, record_journal=journal)


class TestFaultSchedule:
    def test_deterministic_per_seed(self):
        a = FaultSchedule(seed=7, transient_rate=0.2, hard_rate=0.05,
                          torn_rate=0.1)
        b = FaultSchedule(seed=7, transient_rate=0.2, hard_rate=0.05,
                          torn_rate=0.1)
        for i in range(200):
            assert a.decide("write", i) == b.decide("write", i)
            assert a.decide("read", i) == b.decide("read", i)

    def test_order_independent(self):
        a = FaultSchedule(seed=3, transient_rate=0.3)
        forward = [a.decide("read", i) for i in range(50)]
        backward = [a.decide("read", i) for i in reversed(range(50))]
        assert forward == list(reversed(backward))

    def test_seeds_differ(self):
        a = FaultSchedule(seed=1, transient_rate=0.5)
        b = FaultSchedule(seed=2, transient_rate=0.5)
        assert any(a.decide("read", i) != b.decide("read", i)
                   for i in range(100))

    def test_rates_zero_means_clean(self):
        s = FaultSchedule(seed=9)
        assert all(s.decide("write", i).kind == OK for i in range(100))

    def test_explicit_injections_override(self):
        s = (FaultSchedule(seed=1)
             .fail_read(3, transient=True, failures=2)
             .fail_write(5)
             .tear_write(7, landed_blocks=2))
        assert s.decide("read", 3).kind == TRANSIENT
        assert s.decide("read", 3).failures == 2
        assert s.decide("write", 5).kind == HARD
        torn = s.decide("write", 7)
        assert torn.kind == TORN and torn.torn_blocks == 2
        assert s.decide("write", 6).kind == OK


class TestProxyTransparent:
    def test_no_schedule_is_identity(self):
        plain = BlockDevice(TEST_PROFILE)
        faulty = proxy()
        for bno in (0, 7, 100):
            plain.write_block(bno, block(bno))
            faulty.write_block(bno, block(bno))
        assert faulty.read_block(7) == plain.read_block(7)
        assert faulty.read_extent(0, 2) == plain.read_extent(0, 2)
        assert faulty.stats.media_writes == 3
        assert faulty.stats.transient_faults == 0

    def test_batches_route_through_fault_path(self):
        s = FaultSchedule().fail_write(0)
        dev = proxy(schedule=s)
        with pytest.raises(MediaWriteError):
            dev.write_batch({1: block(1), 2: block(2)})
        assert dev.stats.hard_write_faults == 1


class TestTransient:
    def test_absorbed_with_latency(self):
        s = FaultSchedule().fail_write(0, transient=True, failures=2)
        dev = proxy(schedule=s, retry=RetryPolicy(backoff=0.5))
        before = dev.clock.now
        dev.write_block(4, block(4))
        assert dev.read_block(4) == block(4)          # data landed
        assert dev.stats.transient_faults == 2
        assert dev.clock.now - before >= 0.5 + 1.0    # backoff 0.5, then 1.0

    def test_exhausted_budget_escalates(self):
        s = FaultSchedule().fail_read(0, transient=True, failures=4)
        dev = proxy(schedule=s, retry=RetryPolicy(max_attempts=4))
        dev.write_block(2, block(2))
        with pytest.raises(MediaReadError):
            dev.read_extent(2, 1)
        assert dev.stats.hard_read_faults == 1


class TestHardAndTorn:
    def test_hard_write_lands_nothing(self):
        s = FaultSchedule().fail_write(0)
        dev = proxy(schedule=s)
        with pytest.raises(MediaWriteError):
            dev.write_extent(10, [block(1), block(2)])
        assert dev.read_block(10) == bytes(BLOCK_SIZE)
        assert dev.stats.media_writes == 0

    def test_hard_read_raises(self):
        s = FaultSchedule().fail_read(0)
        dev = proxy(schedule=s)
        with pytest.raises(MediaReadError):
            dev.read_block(0)

    def test_torn_write_lands_prefix(self):
        s = FaultSchedule().tear_write(0, landed_blocks=2)
        dev = proxy(schedule=s)
        with pytest.raises(MediaWriteError):
            dev.write_extent(20, [block(1), block(2), block(3), block(4)])
        assert dev.read_block(20) == block(1)
        assert dev.read_block(21) == block(2)
        assert dev.read_block(22) == bytes(BLOCK_SIZE)
        assert dev.stats.torn_writes == 1
        assert dev.stats.media_writes == 2


class TestPowerCut:
    def test_cut_lands_budget_then_dies(self):
        s = FaultSchedule(power_cut_after_write=3)
        dev = proxy(schedule=s, journal=True)
        dev.write_extent(5, [block(1), block(2)])     # 2 writes landed
        with pytest.raises(PowerLoss):
            dev.write_extent(8, [block(3), block(4)])  # 1 more, then cut
        assert dev.stats.media_writes == 3
        assert dev.dead
        with pytest.raises(PowerLoss):
            dev.read_block(0)
        with pytest.raises(PowerLoss):
            dev.write_block(0, block(0))
        with pytest.raises(PowerLoss):
            dev.flush()

    def test_image_at_replays_prefix(self):
        dev = proxy(journal=True)
        for i in range(5):
            dev.write_block(30 + i, block(i + 1))
        image = dev.image_at(3)
        assert image.peek_block(30) == block(1)
        assert image.peek_block(32) == block(3)
        assert image.peek_block(33) == bytes(BLOCK_SIZE)
        full = dev.image_at()
        assert full.peek_block(34) == block(5)

    def test_image_at_requires_journal(self):
        dev = proxy()
        with pytest.raises(ValueError):
            dev.image_at(0)


class TestFileSystemOverFaults:
    """Transient faults the drive absorbs must be invisible to fsck."""

    @pytest.mark.parametrize("maker,check", [(make_ffs, fsck_ffs),
                                             (make_cffs, fsck_cffs)])
    def test_transient_faults_stay_clean(self, maker, check):
        fs = maker()
        fs.device = FaultyBlockDevice(
            fs.device,
            schedule=FaultSchedule(seed=42, transient_rate=0.2,
                                   max_transient_failures=2),
        )
        fs.cache.device = fs.device
        fs.mkdir("/d")
        for i in range(25):
            fs.write_file("/d/f%02d" % i, b"v" * (400 * (i + 1)))
        for i in range(0, 25, 3):
            fs.unlink("/d/f%02d" % i)
        fs.sync()
        assert fs.device.stats.transient_faults > 0
        report = check(fs.device)
        assert report.pristine, report.render()
        fs.drop_caches()
        assert fs.read_file("/d/f01") == b"v" * 800


class TestBatchPaths:
    """read_batch/write_batch must route through the same fault machinery
    as the extent paths: transients absorbed with latency, hard faults
    raised with nothing landed, location faults honoured per block."""

    def test_read_batch_clean_roundtrip(self):
        dev = proxy()
        dev.write_batch({4: block(4), 9: block(9), 10: block(10)})
        out = dev.read_batch([4, 9, 10])
        assert out == {4: block(4), 9: block(9), 10: block(10)}

    def test_read_batch_transient_absorbed_with_latency(self):
        s = FaultSchedule().fail_read(0, transient=True, failures=1)
        dev = proxy(schedule=s, retry=RetryPolicy(backoff=0.25))
        dev.write_batch({4: block(4), 9: block(9)})
        before = dev.clock.now
        out = dev.read_batch([4, 9])
        assert out == {4: block(4), 9: block(9)}
        assert dev.stats.transient_faults == 1
        assert dev.clock.now - before >= 0.25  # the backoff was paid

    def test_read_batch_hard_fault_raises(self):
        s = FaultSchedule().fail_read(0)
        dev = proxy(schedule=s)
        with pytest.raises(MediaReadError):
            dev.read_batch([3, 4, 5])
        assert dev.stats.hard_read_faults == 1

    def test_write_batch_transient_lands_everything(self):
        s = FaultSchedule().fail_write(0, transient=True, failures=2)
        dev = proxy(schedule=s)
        nrequests = dev.write_batch({10: block(1), 11: block(2), 40: block(3)})
        assert nrequests == 2  # coalesced runs [10,11] and [40]
        for bno, tag in ((10, 1), (11, 2), (40, 3)):
            assert dev.read_block(bno) == block(tag)
        assert dev.stats.transient_faults == 2

    def test_write_batch_hard_fault_lands_nothing_of_that_request(self):
        s = FaultSchedule().fail_write(0)
        dev = proxy(schedule=s)
        with pytest.raises(MediaWriteError):
            dev.write_batch({10: block(1), 11: block(2)})
        assert dev.read_block(10) == bytes(BLOCK_SIZE)
        assert dev.read_block(11) == bytes(BLOCK_SIZE)

    def test_read_batch_weak_block_costs_latency_not_data(self):
        s = FaultSchedule(seed=5).weaken_reads([30])
        dev = proxy(schedule=s)
        dev.write_batch({29: block(9), 30: block(7)})
        before = dev.clock.now
        out = dev.read_batch([29, 30])
        assert out[29] == block(9) and out[30] == block(7)
        assert dev.stats.weak_reads == 1
        assert dev.clock.now > before

    def test_read_batch_bad_block_poisons_covering_request(self):
        s = FaultSchedule(seed=5).break_reads([31])
        dev = proxy(schedule=s)
        dev.write_batch({30: block(1), 31: block(2), 32: block(3)})
        with pytest.raises(MediaReadError):
            dev.read_batch([30, 31, 32])   # coalesces over the bad block
        assert dev.read_block(30) == block(1)  # neighbours still fine alone
        assert dev.stats.hard_read_faults >= 1

    def test_write_batch_bad_block_refuses_covering_request(self):
        s = FaultSchedule(seed=5).break_writes([21])
        dev = proxy(schedule=s)
        with pytest.raises(MediaWriteError):
            dev.write_batch({20: block(1), 21: block(2)})
        assert dev.read_block(20) == bytes(BLOCK_SIZE)
        assert dev.stats.hard_write_faults == 1

    def test_read_batch_rot_corrupts_silently_once(self):
        s = FaultSchedule(seed=5).rot([42])
        dev = proxy(schedule=s)
        dev.write_batch({41: block(1), 42: block(2)})
        s.rot([42])                       # re-arm: the write cancelled decay
        out = dev.read_batch([41, 42])
        assert out[41] == block(1)
        assert out[42] != block(2)        # flipped bits, no error raised
        assert sum(a != b for a, b in zip(out[42], block(2))) == 1
        assert dev.stats.rot_corruptions == 1
        # Decay is sticky: the same corrupt bytes on every later read.
        assert dev.read_batch([42])[42] == out[42]
        assert dev.stats.rot_corruptions == 1
