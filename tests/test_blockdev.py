"""Tests for the block device and batch scheduling."""

import pytest

from repro.blockdev.device import BLOCK_SIZE, BlockDevice
from repro.blockdev.scheduler import clook_order, coalesce_blocks
from repro.errors import AddressError
from tests.conftest import TEST_PROFILE


def make_dev() -> BlockDevice:
    return BlockDevice(TEST_PROFILE)


class TestScheduler:
    def test_clook_ascending_from_head(self):
        assert clook_order([5, 1, 9, 3], head_position=4) == [5, 9, 1, 3]

    def test_clook_all_below_head(self):
        assert clook_order([3, 1, 2], head_position=10) == [1, 2, 3]

    def test_clook_dedupes(self):
        assert clook_order([2, 2, 2], head_position=0) == [2]

    def test_coalesce_adjacent(self):
        assert coalesce_blocks([1, 2, 3, 7, 8, 20]) == [(1, 3), (7, 2), (20, 1)]

    def test_coalesce_respects_cap(self):
        runs = coalesce_blocks(list(range(100)), max_blocks=40)
        assert runs == [(0, 40), (40, 40), (80, 20)]

    def test_coalesce_empty(self):
        assert coalesce_blocks([]) == []


class TestBlockDevice:
    def test_unwritten_blocks_read_zero(self):
        dev = make_dev()
        assert dev.read_block(10) == bytes(BLOCK_SIZE)

    def test_write_then_read(self):
        dev = make_dev()
        data = bytes(range(256)) * 16
        dev.write_block(5, data)
        assert dev.read_block(5) == data

    def test_write_requires_full_block(self):
        dev = make_dev()
        with pytest.raises(ValueError):
            dev.write_block(5, b"short")

    def test_extent_roundtrip(self):
        dev = make_dev()
        blocks = [bytes([i]) * BLOCK_SIZE for i in range(4)]
        dev.write_extent(10, blocks)
        assert dev.read_extent(10, 4) == blocks

    def test_extent_is_one_request(self):
        dev = make_dev()
        dev.write_extent(10, [bytes(BLOCK_SIZE)] * 16)
        assert dev.disk.stats.writes == 1

    def test_out_of_range(self):
        dev = make_dev()
        with pytest.raises(AddressError):
            dev.read_block(dev.total_blocks)
        with pytest.raises(AddressError):
            dev.read_extent(dev.total_blocks - 1, 2)

    def test_write_batch_coalesces(self):
        dev = make_dev()
        writes = {b: bytes(BLOCK_SIZE) for b in [10, 11, 12, 50, 51, 99]}
        nreq = dev.write_batch(writes)
        assert nreq == 3
        assert dev.disk.stats.writes == 3

    def test_write_batch_data_lands(self):
        dev = make_dev()
        writes = {b: bytes([b % 251]) * BLOCK_SIZE for b in [3, 4, 77]}
        dev.write_batch(writes)
        dev.flush()
        for b in writes:
            assert dev.peek_block(b) == writes[b]

    def test_write_batch_empty(self):
        dev = make_dev()
        assert dev.write_batch({}) == 0

    def test_read_batch_returns_all(self):
        dev = make_dev()
        for b in (7, 8, 30):
            dev.write_block(b, bytes([b]) * BLOCK_SIZE)
        got = dev.read_batch([7, 8, 30])
        assert set(got) == {7, 8, 30}
        assert got[30] == bytes([30]) * BLOCK_SIZE

    def test_peek_poke_do_not_advance_clock(self):
        dev = make_dev()
        t = dev.clock.now
        dev.poke_block(9, bytes(BLOCK_SIZE))
        dev.peek_block(9)
        assert dev.clock.now == t

    def test_timed_ops_advance_clock(self):
        dev = make_dev()
        t = dev.clock.now
        dev.read_block(0)
        assert dev.clock.now > t
