"""Unit tests for the GroupTable (extent descriptors and slots)."""

import pytest

from repro.cache.buffercache import BufferCache
from repro.core.groups import GroupTable
from repro.core.layout import EXT_FREE, EXT_GROUPED, EXT_UNGROUPED, GROUP_SPAN
from repro.errors import CorruptFileSystem
from tests.conftest import make_device

BPC = 512
DATA_START = 4


def make_table(span: int = GROUP_SPAN):
    cache = BufferCache(make_device(), 256)
    table = GroupTable(
        cache,
        n_cgs=3,
        blocks_per_cg=BPC,
        gdt_blocks=2,
        data_start=DATA_START,
        cg_base_of=lambda cgi: 1 + cgi * BPC,
        span=span,
    )
    # Zeroed descriptor blocks are valid FREE descriptors.
    for cgi in range(3):
        for g in range(2):
            cache.create(1 + cgi * BPC + 2 + g)
    return table, cache


class TestGeometry:
    def test_extent_of_data_block(self):
        table, _ = make_table()
        base = 1 + DATA_START
        assert table.extent_of_block(base) == (0, 0)
        assert table.extent_of_block(base + GROUP_SPAN) == (0, 1)
        assert table.extent_of_block(1 + BPC + DATA_START) == (1, 0)

    def test_metadata_blocks_have_no_extent(self):
        table, _ = make_table()
        assert table.extent_of_block(0) is None
        assert table.extent_of_block(1) is None      # cg descriptor
        assert table.extent_of_block(2) is None      # bitmap
        assert table.extent_of_block(3) is None      # gdt

    def test_extent_base_roundtrip(self):
        table, _ = make_table()
        for ext in ((0, 0), (0, 5), (2, 3)):
            base = table.extent_base(ext)
            assert table.extent_of_block(base) == ext
            assert table.extent_of_block(base + GROUP_SPAN - 1) == ext

    def test_span_bounds_checked(self):
        cache = BufferCache(make_device(), 64)
        with pytest.raises(ValueError):
            GroupTable(cache, 1, BPC, 2, DATA_START, lambda c: 1, span=17)
        with pytest.raises(ValueError):
            GroupTable(cache, 1, BPC, 2, DATA_START, lambda c: 1, span=0)


class TestSlots:
    def test_claim_then_take(self):
        table, _ = make_table()
        table.claim_extent((0, 0), owner=99)
        desc = table.read_desc((0, 0))
        assert desc["state"] == EXT_GROUPED
        assert desc["owner"] == 99
        bno = table.take_slot((0, 0), fileid=7, fblock=0)
        assert bno == table.extent_base((0, 0))
        assert table.read_desc((0, 0))["slots"][0] == (7, 0)

    def test_take_fills_lowest_first(self):
        table, _ = make_table()
        table.claim_extent((0, 0), owner=1)
        bnos = [table.take_slot((0, 0), i, 0) for i in range(4)]
        base = table.extent_base((0, 0))
        assert bnos == [base, base + 1, base + 2, base + 3]

    def test_full_extent_returns_none(self):
        table, _ = make_table(span=4)
        table.claim_extent((0, 0), owner=1)
        for i in range(4):
            assert table.take_slot((0, 0), i, 0) is not None
        assert table.take_slot((0, 0), 99, 0) is None

    def test_active_hint_lifecycle(self):
        table, _ = make_table(span=4)
        table.claim_extent((0, 0), owner=5)
        assert table.active_extent(5) == (0, 0)
        for i in range(4):
            table.take_slot((0, 0), i, 0)
        assert table.active_extent(5) is None  # full extents drop out
        table.free_slot(table.extent_base((0, 0)) + 1)
        assert table.active_extent(5) == (0, 0)  # partially free again

    def test_free_slot_releases_empty_extent(self):
        table, _ = make_table(span=4)
        table.claim_extent((0, 0), owner=1)
        a = table.take_slot((0, 0), 1, 0)
        b = table.take_slot((0, 0), 2, 0)
        assert table.free_slot(a) is False
        assert table.free_slot(b) is True
        assert table.read_desc((0, 0))["state"] == EXT_FREE

    def test_double_free_slot_rejected(self):
        table, _ = make_table()
        table.claim_extent((0, 0), owner=1)
        bno = table.take_slot((0, 0), 1, 0)
        table.take_slot((0, 0), 2, 1)  # keep the extent alive
        table.free_slot(bno)
        with pytest.raises(CorruptFileSystem):
            table.free_slot(bno)

    def test_claim_non_free_rejected(self):
        table, _ = make_table()
        table.claim_extent((0, 0), owner=1)
        with pytest.raises(CorruptFileSystem):
            table.claim_extent((0, 0), owner=2)

    def test_live_span_covers_extremes(self):
        table, _ = make_table()
        table.claim_extent((0, 0), owner=1)
        base = table.extent_base((0, 0))
        table.take_slot((0, 0), 1, 0)   # slot 0
        table.take_slot((0, 0), 2, 0)   # slot 1
        table.free_slot(base)           # hole at slot 0
        table.take_slot((0, 0), 3, 0)   # refills slot 0
        table.take_slot((0, 0), 4, 0)   # slot 2
        start, count, _desc = table.live_span((0, 0))
        assert (start, count) == (base, 3)

    def test_live_span_none_for_empty(self):
        table, _ = make_table()
        assert table.live_span((0, 0)) is None

    def test_grouped_blocks_listing(self):
        table, _ = make_table()
        table.claim_extent((0, 0), owner=1)
        table.take_slot((0, 0), 10, 0)
        table.take_slot((0, 0), 11, 3)
        base = table.extent_base((0, 0))
        assert table.grouped_blocks((0, 0)) == [(base, 10, 0), (base + 1, 11, 3)]


class TestUngroupedTransitions:
    def test_free_to_ungrouped(self):
        table, _ = make_table()
        bno = table.extent_base((0, 2)) + 5
        table.note_ungrouped_alloc(bno)
        assert table.read_desc((0, 2))["state"] == EXT_UNGROUPED

    def test_foreign_alloc_in_group_rejected(self):
        table, _ = make_table()
        table.claim_extent((0, 0), owner=1)
        with pytest.raises(CorruptFileSystem):
            table.note_ungrouped_alloc(table.extent_base((0, 0)))

    def test_ungrouped_reverts_when_empty(self):
        table, _ = make_table()
        bno = table.extent_base((0, 2)) + 5
        table.note_ungrouped_alloc(bno)
        allocated = {bno}
        table.note_ungrouped_free(bno, lambda b: b in allocated - {bno})
        assert table.read_desc((0, 2))["state"] == EXT_FREE

    def test_ungrouped_stays_while_occupied(self):
        table, _ = make_table()
        base = table.extent_base((0, 2))
        table.note_ungrouped_alloc(base)
        table.note_ungrouped_alloc(base + 1)
        table.note_ungrouped_free(base, lambda b: b == base + 1)
        assert table.read_desc((0, 2))["state"] == EXT_UNGROUPED

    def test_drop_hints(self):
        table, _ = make_table()
        table.claim_extent((0, 0), owner=1)
        table.drop_hints()
        assert table.active_extent(1) is None
