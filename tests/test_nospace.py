"""Disk-full behaviour: graceful NoSpace, consistency, and recovery."""

import pytest

from repro.blockdev.device import BLOCK_SIZE, BlockDevice
from repro.core.filesystem import CFFS, CFFSConfig
from repro.disk.profiles import DriveProfile
from repro.errors import NoSpace
from repro.ffs.filesystem import FFS, FFSConfig
from repro.fsck import fsck_cffs, fsck_ffs

TINY_PROFILE = DriveProfile(
    name="TinyDrive 3MB",
    year=1996,
    rpm=5400.0,
    heads=2,
    zone_table=((100, 32),),
    single_cyl_seek_ms=1.0,
    avg_seek_ms=5.0,
    full_seek_ms=10.0,
    write_cache=True,
    write_buffer_kb=64,
)


def tiny_cffs(**overrides) -> CFFS:
    config = CFFSConfig(blocks_per_cg=256, cache_blocks=128, **overrides)
    return CFFS.mkfs(BlockDevice(TINY_PROFILE), config)


def tiny_ffs() -> FFS:
    config = FFSConfig(blocks_per_cg=256, inodes_per_cg=64, cache_blocks=128)
    return FFS.mkfs(BlockDevice(TINY_PROFILE), config)


def fill_until_nospace(fs, size: int = 8 * BLOCK_SIZE) -> int:
    written = 0
    while True:
        try:
            fs.write_file("/fill%05d" % written, b"f" * size)
        except NoSpace:
            return written
        written += 1
        if written > 10000:  # pragma: no cover - guard
            raise AssertionError("tiny disk never filled")


class TestCffsFull:
    def test_fill_raises_nospace(self):
        fs = tiny_cffs()
        count = fill_until_nospace(fs)
        assert count > 10

    def test_consistent_after_enospc(self):
        fs = tiny_cffs()
        fill_until_nospace(fs)
        fs.sync()
        report = fsck_cffs(fs.device)
        assert report.ok, report.render()

    def test_free_then_write_again(self):
        fs = tiny_cffs()
        count = fill_until_nospace(fs)
        for i in range(0, count, 2):
            fs.unlink("/fill%05d" % i)
        fs.write_file("/after", b"a" * (4 * BLOCK_SIZE))
        assert fs.read_file("/after") == b"a" * (4 * BLOCK_SIZE)
        fs.sync()
        assert fsck_cffs(fs.device).ok

    def test_grouping_falls_back_when_no_extents(self):
        """When no whole free extent remains, small files still get
        blocks (ungrouped) instead of failing."""
        fs = tiny_cffs()
        # Consume most space with large (ungrouped) files.
        try:
            i = 0
            while True:
                fs.write_file("/big%03d" % i, b"B" * (14 * BLOCK_SIZE))
                i += 1
        except NoSpace:
            pass
        # Free one large file: its blocks are scattered singles, not
        # necessarily a whole aligned extent.
        fs.unlink("/big000")
        fs.write_file("/small", b"s" * 1024)
        assert fs.read_file("/small") == b"s" * 1024

    def test_full_data_preserved(self):
        fs = tiny_cffs()
        fs.write_file("/keep", b"K" * 5000)
        fill_until_nospace(fs)
        assert fs.read_file("/keep") == b"K" * 5000
        fs.sync()
        fs.drop_caches()
        assert fs.read_file("/keep") == b"K" * 5000


class TestFfsFull:
    def test_fill_raises_nospace(self):
        fs = tiny_ffs()
        assert fill_until_nospace(fs) > 10

    def test_consistent_after_enospc(self):
        fs = tiny_ffs()
        fill_until_nospace(fs)
        fs.sync()
        report = fsck_ffs(fs.device)
        assert report.ok, report.render()

    def test_inode_exhaustion(self):
        """Empty files exhaust inodes before blocks."""
        fs = tiny_ffs()
        created = 0
        with pytest.raises(NoSpace):
            while True:
                fs.create("/empty%05d" % created)
                created += 1
        # 64 inodes/cg minus root and per-cg accounting.
        assert created >= 50
        fs.sync()
        assert fsck_ffs(fs.device).ok

    def test_cffs_has_no_inode_limit(self):
        """C-FFS allocates no static inodes: the same create storm that
        exhausts FFS inodes only consumes directory blocks."""
        fs = tiny_cffs()
        for i in range(120):  # more than the FFS tiny image could hold
            fs.create("/e%05d" % i)
        assert len(fs.readdir("/")) == 120
