"""Tests for zoned disk geometry and address translation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.geometry import SECTOR_SIZE, DiskGeometry, Zone
from repro.errors import AddressError


def two_zone() -> DiskGeometry:
    return DiskGeometry(4, [Zone(100, 40), Zone(100, 24)])


class TestConstruction:
    def test_total_sectors(self):
        g = two_zone()
        assert g.total_sectors == 100 * 4 * 40 + 100 * 4 * 24

    def test_capacity_bytes(self):
        g = two_zone()
        assert g.capacity_bytes == g.total_sectors * SECTOR_SIZE

    def test_uniform_constructor(self):
        g = DiskGeometry.uniform(10, 2, 8)
        assert g.total_sectors == 160
        assert g.cylinders == 10

    def test_rejects_no_zones(self):
        with pytest.raises(ValueError):
            DiskGeometry(2, [])

    def test_rejects_zero_heads(self):
        with pytest.raises(ValueError):
            DiskGeometry(0, [Zone(5, 5)])

    def test_zone_validation(self):
        with pytest.raises(ValueError):
            Zone(0, 10)
        with pytest.raises(ValueError):
            Zone(10, 0)


class TestTranslation:
    def test_lba_zero(self):
        assert two_zone().chs(0) == (0, 0, 0)

    def test_last_sector_of_first_track(self):
        assert two_zone().chs(39) == (0, 0, 39)

    def test_head_advance(self):
        assert two_zone().chs(40) == (0, 1, 0)

    def test_cylinder_advance(self):
        g = two_zone()
        assert g.chs(40 * 4) == (1, 0, 0)

    def test_zone_boundary(self):
        g = two_zone()
        first_of_zone2 = 100 * 4 * 40
        assert g.chs(first_of_zone2) == (100, 0, 0)

    def test_sectors_per_track_by_zone(self):
        g = two_zone()
        assert g.sectors_per_track_at(0) == 40
        assert g.sectors_per_track_at(150) == 24

    def test_out_of_range_lba(self):
        g = two_zone()
        with pytest.raises(AddressError):
            g.chs(g.total_sectors)
        with pytest.raises(AddressError):
            g.chs(-1)

    def test_out_of_range_cylinder(self):
        with pytest.raises(AddressError):
            two_zone().zone_of_cylinder(200)

    def test_bad_head_rejected(self):
        with pytest.raises(AddressError):
            two_zone().lba(0, 4, 0)

    def test_bad_sector_rejected(self):
        with pytest.raises(AddressError):
            two_zone().lba(0, 0, 40)

    @given(st.integers(min_value=0, max_value=100 * 4 * 40 + 100 * 4 * 24 - 1))
    @settings(max_examples=200)
    def test_roundtrip(self, lba):
        g = two_zone()
        cyl, head, sector = g.chs(lba)
        assert g.lba(cyl, head, sector) == lba

    @given(st.integers(min_value=0, max_value=100 * 4 * 40 + 100 * 4 * 24 - 2))
    @settings(max_examples=100)
    def test_monotone(self, lba):
        """(cylinder, head, sector) increases lexicographically with LBA."""
        g = two_zone()
        assert g.chs(lba + 1) > g.chs(lba)
