"""Tests for application-hint grouping (the paper's §6 extension)."""


from repro.fsck import fsck_cffs
from repro.workloads.hypertext import build_site, serve_documents
from tests.conftest import make_cffs


class TestGroupContext:
    def test_hinted_files_share_extent_across_dirs(self, cffs):
        cffs.mkdir("/pages")
        cffs.mkdir("/images")
        with cffs.group_context("doc1"):
            cffs.write_file("/pages/index.html", b"h" * 2048)
            cffs.write_file("/images/logo.gif", b"g" * 2048)
        e1 = cffs.groups.extent_of_block(cffs._resolve("/pages/index.html").direct[0])
        e2 = cffs.groups.extent_of_block(cffs._resolve("/images/logo.gif").direct[0])
        assert e1 == e2

    def test_different_hints_different_extents(self, cffs):
        cffs.mkdir("/d")
        with cffs.group_context("a"):
            cffs.write_file("/d/fa", b"a" * 1024)
        with cffs.group_context("b"):
            cffs.write_file("/d/fb", b"b" * 1024)
        ea = cffs.groups.extent_of_block(cffs._resolve("/d/fa").direct[0])
        eb = cffs.groups.extent_of_block(cffs._resolve("/d/fb").direct[0])
        assert ea != eb

    def test_same_tag_reuses_context(self, cffs):
        cffs.mkdir("/d")
        with cffs.group_context("t"):
            cffs.write_file("/d/f1", b"1" * 1024)
        with cffs.group_context("t"):
            cffs.write_file("/d/f2", b"2" * 1024)
        e1 = cffs.groups.extent_of_block(cffs._resolve("/d/f1").direct[0])
        e2 = cffs.groups.extent_of_block(cffs._resolve("/d/f2").direct[0])
        assert e1 == e2

    def test_nested_contexts_innermost_wins(self, cffs):
        cffs.mkdir("/d")
        with cffs.group_context("outer"):
            with cffs.group_context("inner"):
                cffs.write_file("/d/fi", b"i" * 1024)
            cffs.write_file("/d/fo", b"o" * 1024)
        ei = cffs.groups.extent_of_block(cffs._resolve("/d/fi").direct[0])
        eo = cffs.groups.extent_of_block(cffs._resolve("/d/fo").direct[0])
        assert ei != eo

    def test_outside_context_back_to_namespace(self, cffs):
        cffs.mkdir("/d")
        with cffs.group_context("t"):
            cffs.write_file("/d/hinted", b"h" * 1024)
        cffs.write_file("/d/plain", b"p" * 1024)
        dirh = cffs._resolve("/d")
        ext = cffs.groups.extent_of_block(cffs._resolve("/d/plain").direct[0])
        assert cffs.groups.read_desc(ext)["owner"] == dirh.fileid

    def test_content_roundtrip(self, cffs):
        cffs.mkdir("/d")
        with cffs.group_context("t"):
            cffs.write_file("/d/a", b"A" * 3000)
            cffs.write_file("/d/b", b"B" * 1500)
        assert cffs.read_file("/d/a") == b"A" * 3000
        assert cffs.read_file("/d/b") == b"B" * 1500

    def test_hinted_image_passes_fsck(self, cffs):
        cffs.mkdir("/d")
        with cffs.group_context("t"):
            for i in range(10):
                cffs.write_file("/d/f%d" % i, bytes([i]) * 2000)
        cffs.unlink("/d/f3")
        cffs.sync()
        report = fsck_cffs(cffs.device)
        assert report.ok, report.render()

    def test_hinted_group_read_fetches_document(self, cffs):
        """Reading one hinted file installs its document siblings."""
        cffs.mkdir("/p")
        cffs.mkdir("/i")
        with cffs.group_context("doc"):
            cffs.write_file("/p/page.html", b"h" * 2048)
            cffs.write_file("/i/pic1.gif", b"1" * 2048)
            cffs.write_file("/i/pic2.gif", b"2" * 2048)
        cffs.sync()
        cffs.drop_caches()
        cffs.read_file("/p/page.html")
        # Warm the directories, then check the sibling data is cached.
        before = cffs.device.disk.stats.reads
        assert cffs.read_file("/i/pic1.gif") == b"1" * 2048
        assert cffs.read_file("/i/pic2.gif") == b"2" * 2048
        # Only directory blocks may have been read, not file data.
        data_reads = cffs.device.disk.stats.reads - before
        assert data_reads <= 2

    def test_unbalanced_exit_guard(self, cffs):
        mgr = cffs.group_context("x")
        with mgr:
            pass  # balanced: fine
        assert cffs._hint_stack == []


class TestEvictFileData:
    def test_evicts_data_keeps_metadata(self, cffs):
        cffs.write_file("/a", b"x" * 8192)
        cffs.sync()
        dropped = cffs.evict_file_data("/a")
        assert dropped == 2
        # Metadata still warm: stat without disk reads.
        before = cffs.device.disk.stats.reads
        cffs.stat("/a")
        assert cffs.device.disk.stats.reads == before
        # Data really gone: reading hits the disk again.
        cffs.read_file("/a")
        assert cffs.device.disk.stats.reads > before

    def test_flushes_dirty_before_evicting(self, cffs):
        cffs.write_file("/a", b"y" * 4096)
        cffs.evict_file_data("/a")
        assert cffs.read_file("/a") == b"y" * 4096


class TestHypertextWorkload:
    def test_site_builds_and_serves(self):
        fs = make_cffs()
        docs = build_site(fs, n_documents=10)
        result = serve_documents(fs, docs)
        assert result.documents == 10
        assert result.seconds > 0

    def test_hints_beat_namespace_grouping(self):
        plain = make_cffs()
        docs = build_site(plain, n_documents=25)
        r_plain = serve_documents(plain, docs, label="cffs")

        hinted = make_cffs()
        docs = build_site(hinted, n_documents=25, use_hints=True)
        r_hint = serve_documents(hinted, docs, label="hints")

        assert r_hint.requests_per_document < r_plain.requests_per_document
        assert r_hint.documents_per_second > r_plain.documents_per_second

    def test_deterministic(self):
        def run():
            fs = make_cffs()
            docs = build_site(fs, n_documents=8)
            return serve_documents(fs, docs).seconds

        assert run() == run()
