"""Tests for path handling and descriptor bookkeeping."""

import pytest

from repro.errors import BadFileDescriptor, InvalidArgument, NameTooLong
from repro.vfs.fdtable import FdTable, OpenFile
from repro.vfs.path import basename_of, normalize, split_path


class TestPaths:
    def test_normalize_collapses_slashes(self):
        assert normalize("//a///b/") == "/a/b"

    def test_normalize_root(self):
        assert normalize("/") == "/"

    def test_relative_rejected(self):
        with pytest.raises(InvalidArgument):
            normalize("a/b")

    def test_empty_rejected(self):
        with pytest.raises(InvalidArgument):
            normalize("")

    def test_dot_components_rejected(self):
        with pytest.raises(InvalidArgument):
            normalize("/a/./b")
        with pytest.raises(InvalidArgument):
            normalize("/a/../b")

    def test_long_name_rejected(self):
        with pytest.raises(NameTooLong):
            normalize("/" + "x" * 300)

    def test_split(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]
        assert split_path("/") == []

    def test_basename(self):
        assert basename_of("/a/b/c") == (["a", "b"], "c")
        assert basename_of("/c") == ([], "c")

    def test_basename_of_root_invalid(self):
        with pytest.raises(InvalidArgument):
            basename_of("/")


class TestFdTable:
    def test_allocate_and_lookup(self):
        table = FdTable()
        rec = OpenFile(object(), "/x")
        fd = table.allocate(rec)
        assert fd >= 3
        assert table.lookup(fd) is rec

    def test_fds_unique(self):
        table = FdTable()
        fds = [table.allocate(OpenFile(None, "/x")) for _ in range(10)]
        assert len(set(fds)) == 10

    def test_release(self):
        table = FdTable()
        fd = table.allocate(OpenFile(None, "/x"))
        table.release(fd)
        with pytest.raises(BadFileDescriptor):
            table.lookup(fd)

    def test_double_release(self):
        table = FdTable()
        fd = table.allocate(OpenFile(None, "/x"))
        table.release(fd)
        with pytest.raises(BadFileDescriptor):
            table.release(fd)

    def test_unknown_fd(self):
        with pytest.raises(BadFileDescriptor):
            FdTable().lookup(99)

    def test_len(self):
        table = FdTable()
        table.allocate(OpenFile(None, "/x"))
        table.allocate(OpenFile(None, "/y"))
        assert len(table) == 2
