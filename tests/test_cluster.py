"""The sharded cluster: router, facade, traffic model, crash safety.

Four claims are pinned here:

- **Placement determinism** — same seed and namespace tree give the
  same assignment across runs, and a shard-count-preserving restart
  rebuilds the identical table from the mounted roots.
- **Facade fidelity** — the FileSystem surface behaves over N shards
  as it does over one, with volume-boundary semantics (EXDEV-style
  link refusal, file-only cross-shard rename) where it cannot.
- **Traffic-model determinism and balance** — byte-identical reports
  for identical seeds; the utilization-aware placer keeps per-shard
  ops imbalance within bounds under Zipfian skew, and four shards
  beat one by the margin the scale-out story promises.
- **Crash safety** — the cross-shard rename protocol, killed at every
  landed media write across *both* shards' interleaved streams,
  always recovers to exactly one intact copy of the file.
"""

import json

import pytest

from repro.blockdev.device import BlockDevice
from repro.cache.policy import MetadataPolicy
from repro.cluster import (
    Cluster,
    HashRouter,
    TrafficConfig,
    UtilizationRouter,
    cluster_summary,
    encode_intent,
    make_router,
    parse_intent,
    render_cluster,
    run_cluster_traffic,
    split_top,
    validate_cluster_summary,
)
from repro.core.filesystem import CFFS, CFFSConfig
from repro.errors import InvalidArgument
from repro.faults.proxy import FaultyBlockDevice
from repro.fsck import fsck_cffs
from tests.conftest import TEST_PROFILE

SMALL = dict(clients=48, ops_per_client=3, dirs=16, file_size=4096)


def small_cluster(n_shards=2, **kwargs):
    return Cluster(n_shards=n_shards, **kwargs)


# -- router placement ------------------------------------------------------------


class TestRouterPlacement:
    def test_hash_router_is_a_pure_function_of_the_name(self):
        names = ["d%03d" % i for i in range(200)]
        a = HashRouter(4)
        b = HashRouter(4)
        assert [a.place(n) for n in names] == [b.place(n) for n in names]
        # probe agrees with place even for names never placed
        c = HashRouter(4)
        assert [c.probe(n) for n in names] == [a.place(n) for n in names]

    def test_hash_router_uses_every_shard(self):
        router = HashRouter(4)
        owners = {router.place("d%03d" % i) for i in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_util_router_spreads_new_names_evenly_without_load(self):
        router = UtilizationRouter(4)
        owners = [router.place("d%d" % i) for i in range(8)]
        assert sorted(owners) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_util_router_steers_away_from_loaded_shards(self):
        router = UtilizationRouter(2)
        router.place("hot")           # -> shard 0
        router.charge(0, ops=100)     # hot directory hammers shard 0
        assert router.place("cold") == 1

    def test_place_is_first_touch_sticky(self):
        router = UtilizationRouter(2)
        sid = router.place("a")
        router.charge(sid, ops=50)
        assert router.place("a") == sid   # load never moves an assignment

    def test_adopt_rejects_out_of_range_shard(self):
        router = make_router("hash", 2)
        with pytest.raises(InvalidArgument):
            router.adopt("x", 5)

    def test_same_seed_same_tree_identical_assignment_across_runs(self):
        # Satellite: placement determinism. Two full runs from the same
        # seed must produce the same router table, for both policies.
        for kind in ("hash", "util"):
            a = run_cluster_traffic(TrafficConfig(
                shards=4, router=kind, seed=7, **SMALL),
                cluster=(c1 := small_cluster(4, router=kind)))
            b = run_cluster_traffic(TrafficConfig(
                shards=4, router=kind, seed=7, **SMALL),
                cluster=(c2 := small_cluster(4, router=kind)))
            assert c1.router.assignments == c2.router.assignments
            assert render_cluster(a) == render_cluster(b)

    def test_restart_rebuilds_identical_assignment_from_the_roots(self):
        # Satellite: a shard-count-preserving restart re-derives the
        # exact table by scanning the mounted shards' root directories.
        for kind in ("hash", "util"):
            cluster = small_cluster(4, router=kind)
            run_cluster_traffic(TrafficConfig(
                shards=4, router=kind, seed=7, **SMALL), cluster=cluster)
            reborn = Cluster(
                filesystems=[shard.fs for shard in cluster.shards],
                router=kind)
            rebuilt = reborn.rebuild_assignments()
            assert rebuilt == cluster.router.assignments


# -- intent codec ----------------------------------------------------------------


class TestIntentCodec:
    def test_roundtrip(self):
        data = encode_intent(3, "/a/x", "/b/y")
        assert parse_intent(data) == (3, "/a/x", "/b/y")

    def test_torn_and_garbled_intents_parse_to_none(self):
        data = encode_intent(0, "/a/x", "/b/y")
        for cut in range(len(data)):
            assert parse_intent(data[:cut]) is None
        flipped = bytearray(data)
        flipped[5] ^= 0xFF
        assert parse_intent(bytes(flipped)) is None
        assert parse_intent(b"") is None
        assert parse_intent(b"\xff\xfe not utf8 \x80") is None


# -- the facade ------------------------------------------------------------------


class TestClusterFacade:
    def test_basic_namespace_and_data_ops(self):
        fs = small_cluster().fs
        fs.mkdir("/a")
        fs.mkdir("/b")
        fs.write_file("/a/x", b"alpha" * 100)
        fs.write_file("/b/y", b"beta")
        assert fs.readdir("/") == ["a", "b"]
        assert fs.read_file("/a/x") == b"alpha" * 100
        assert fs.stat("/a/x").size == 500
        assert fs.stat("/").is_dir
        fs.unlink("/b/y")
        assert not fs.exists("/b/y")
        fs.rmdir("/b")
        assert fs.readdir("/") == ["a"]

    def test_shards_genuinely_partition_the_namespace(self):
        cluster = small_cluster()
        fs = cluster.fs
        fs.mkdir("/a")
        fs.mkdir("/b")   # util router: second dir lands on the other shard
        fs.write_file("/a/x", b"data")
        sid_a = cluster.router.assignments["a"]
        sid_b = cluster.router.assignments["b"]
        assert sid_a != sid_b
        assert cluster.shards[sid_a].fs.exists("/a/x")
        assert not cluster.shards[sid_b].fs.exists("/a/x")

    def test_reserved_cluster_directory_is_unaddressable_and_hidden(self):
        fs = small_cluster().fs
        with pytest.raises(InvalidArgument):
            fs.readdir("/.cluster")
        with pytest.raises(InvalidArgument):
            fs.write_file("/.cluster/evil", b"x")
        with pytest.raises(InvalidArgument):
            split_top("/.cluster/intent-000001")
        assert fs.readdir("/") == []   # per-shard /.cluster never leaks

    def test_relative_paths_and_root_targets_rejected(self):
        with pytest.raises(InvalidArgument):
            split_top("a/b")
        with pytest.raises(InvalidArgument):
            split_top("/")

    def test_exists_probe_never_places_a_name(self):
        cluster = small_cluster()
        assert not cluster.fs.exists("/ghost/file")
        assert "ghost" not in cluster.router.assignments

    def test_fd_operations_route_to_the_owner(self):
        fs = small_cluster().fs
        fs.mkdir("/a")
        fd = fs.open("/a/f", create=True)
        assert fs.write(fd, b"hello world") == 11
        fs.seek(fd, 6)
        assert fs.read(fd, 5) == b"world"
        fs.fsync(fd)
        fs.close(fd)
        with pytest.raises(InvalidArgument):
            fs.read(fd, 1)   # closed facade fd is dead

    def test_link_within_a_shard_works_across_shards_raises(self):
        cluster = small_cluster()
        fs = cluster.fs
        fs.mkdir("/a")
        fs.mkdir("/b")
        fs.write_file("/a/x", b"x")
        fs.link("/a/x", "/a/x2")
        assert fs.stat("/a/x").nlink == 2
        with pytest.raises(InvalidArgument):
            fs.link("/a/x", "/b/x")   # EXDEV: links cannot span volumes


class TestClusterRename:
    def test_local_rename_stays_on_shard(self):
        cluster = small_cluster()
        fs = cluster.fs
        fs.mkdir("/a")
        fs.write_file("/a/x", b"payload")
        fs.rename("/a/x", "/a/y")
        assert fs.read_file("/a/y") == b"payload"
        snap = cluster.metrics.snapshot()
        assert snap["cluster.rename.local"] == 1
        assert snap.get("cluster.rename.cross_shard", 0) == 0

    def test_cross_shard_rename_moves_the_file_and_leaves_no_intent(self):
        cluster = small_cluster()
        fs = cluster.fs
        fs.mkdir("/a")
        fs.mkdir("/b")
        payload = b"travelling" * 321
        fs.write_file("/a/x", payload)
        fs.rename("/a/x", "/b/x")
        assert not fs.exists("/a/x")
        assert fs.read_file("/b/x") == payload
        assert cluster.metrics.snapshot()["cluster.rename.cross_shard"] == 1
        assert cluster.recover() == []   # protocol completed: no intents

    def test_cross_shard_rename_refuses_directories_and_busy_targets(self):
        cluster = small_cluster()
        fs = cluster.fs
        fs.mkdir("/a")
        fs.mkdir("/b")
        with pytest.raises(InvalidArgument):
            fs.rename("/a", "/b/a")   # whole-subtree moves don't cross volumes
        fs.write_file("/a/x", b"x")
        fs.write_file("/b/x", b"occupied")
        with pytest.raises(InvalidArgument):
            fs.rename("/a/x", "/b/x")


# -- the traffic model -----------------------------------------------------------


class TestClusterTraffic:
    def test_reports_are_byte_identical_across_runs(self):
        cfg = TrafficConfig(shards=4, seed=11, rename_fraction=0.1, **SMALL)
        a = run_cluster_traffic(cfg)
        b = run_cluster_traffic(cfg)
        assert render_cluster(a) == render_cluster(b)
        assert (json.dumps(cluster_summary(a), sort_keys=True)
                == json.dumps(cluster_summary(b), sort_keys=True))

    def test_concurrent_replay_exercises_cross_shard_renames(self):
        result = run_cluster_traffic(TrafficConfig(
            shards=4, seed=11, rename_fraction=0.2, **SMALL))
        assert result.cross_shard_renames > 0
        assert result.phase.n_ops == 48 * 3
        assert result.phase.failed == 0

    def test_per_shard_ops_sum_to_routed_ops(self):
        result = run_cluster_traffic(TrafficConfig(shards=4, seed=3, **SMALL))
        assert sum(s.ops for s in result.per_shard) == result.routes

    def test_summary_schema_is_valid_and_validator_bites(self):
        result = run_cluster_traffic(TrafficConfig(shards=2, seed=5, **SMALL))
        doc = cluster_summary(result)
        assert validate_cluster_summary(doc) == []
        assert validate_cluster_summary({}) != []
        bad = json.loads(json.dumps(doc))
        bad["per_shard"].pop()
        assert any("per_shard" in p for p in validate_cluster_summary(bad))
        bad = json.loads(json.dumps(doc))
        bad["schema"] = "repro-cluster/0"
        assert any("schema" in p for p in validate_cluster_summary(bad))

    def test_invalid_configs_are_rejected(self):
        with pytest.raises(InvalidArgument):
            run_cluster_traffic(TrafficConfig(clients=0))
        with pytest.raises(InvalidArgument):
            run_cluster_traffic(TrafficConfig(read_fraction=0.9,
                                              rename_fraction=0.2))
        with pytest.raises(InvalidArgument):
            run_cluster_traffic(TrafficConfig(zipf_theta=-0.1))
        with pytest.raises(InvalidArgument):
            run_cluster_traffic(TrafficConfig(file_size=0))


class TestClusterAcceptance:
    """The issue's headline numbers, at the issue's scale (1000 clients)."""

    def test_four_shards_beat_one_and_the_placer_balances(self):
        multi = run_cluster_traffic(TrafficConfig())
        single = run_cluster_traffic(TrafficConfig(shards=1))
        speedup = multi.ops_per_second / single.ops_per_second
        assert multi.phase.n_ops == 3000
        assert speedup >= 2.5, "4-shard speedup %.2fx < 2.5x" % speedup
        assert multi.imbalance <= 0.25, (
            "per-shard ops imbalance %.1f%% > 25%%" % (multi.imbalance * 100))

    def test_util_placer_beats_hash_under_zipf(self):
        util = run_cluster_traffic(TrafficConfig())
        hashed = run_cluster_traffic(TrafficConfig(router="hash"))
        assert util.imbalance < hashed.imbalance


# -- crash-point sweep over the cross-shard rename -------------------------------


def _sharded_pair():
    """Two CFFS shards on journaling fault proxies, under one cluster."""
    filesystems = []
    devices = []
    for _ in range(2):
        device = FaultyBlockDevice(BlockDevice(TEST_PROFILE),
                                   record_journal=True)
        config = CFFSConfig(blocks_per_cg=512, cache_blocks=512,
                            policy=MetadataPolicy.SYNC_METADATA)
        filesystems.append(CFFS.mkfs(device, config))
        devices.append(device)
    cluster = Cluster(filesystems=filesystems, router="util")
    return cluster, devices


class TestCrossShardRenameCrashSweep:
    def test_every_media_write_boundary_recovers_to_exactly_one_copy(self):
        cluster, devices = _sharded_pair()
        fs = cluster.fs
        payload = b"exactly-once" * 700   # spans multiple blocks
        fs.mkdir("/src")
        fs.write_file("/src/f", payload)
        fs.mkdir("/dst")
        fs.sync()
        assert cluster.router.assignments["src"] != \
            cluster.router.assignments["dst"]

        # Record the *global* interleaved media-write order from here on.
        base = [len(dev.journal) for dev in devices]
        order = []
        for sid, dev in enumerate(devices):
            dev.on_media_write = (
                lambda bno, data, sid=sid: order.append(sid))

        fs.rename("/src/f", "/dst/f")
        fs.sync()
        for dev in devices:
            dev.on_media_write = None
        assert len(order) > 0

        outcomes = set()
        for k in range(len(order) + 1):
            prefix = order[:k]
            images = [dev.image_at(base[sid] + prefix.count(sid))
                      for sid, dev in enumerate(devices)]
            mounted = []
            for image in images:
                fsck_cffs(image, repair=True)
                report = fsck_cffs(image)
                assert report.pristine, (
                    "crash point %d unrepairable: %s"
                    % (k, "; ".join(report.errors + report.repairs)))
                mounted.append(CFFS.mount(image))
            recovered = Cluster(filesystems=mounted, router="util")
            for _, action in recovered.recover():
                outcomes.add(action)
            src_has = mounted[0].exists("/src/f")
            dst_has = mounted[1].exists("/dst/f")
            assert src_has != dst_has, (
                "crash point %d/%d: file on %s"
                % (k, len(order),
                   "both shards" if src_has else "neither shard"))
            survivor = mounted[0] if src_has else mounted[1]
            path = "/src/f" if src_has else "/dst/f"
            assert survivor.read_file(path) == payload, (
                "crash point %d: surviving copy corrupt" % k)
            # Recovery leaves no intent behind on either shard.
            assert recovered.recover() == []
        # The sweep crossed the commit point: both directions happened.
        assert "rolled_back" in outcomes
        assert "rolled_forward" in outcomes

    def test_recovery_discards_garbled_intents_without_touching_files(self):
        cluster, _ = _sharded_pair()
        fs = cluster.fs
        fs.mkdir("/src")
        fs.write_file("/src/f", b"safe")
        shard = cluster.shards[cluster.router.assignments["src"]]
        shard.fs.write_file("/.cluster/intent-000042", b"not an intent")
        outcomes = cluster.recover()
        assert outcomes == [(-1, "discarded")]
        assert fs.read_file("/src/f") == b"safe"


class TestIntentRecoveryIdempotence:
    def _two_tops(self):
        cluster = Cluster(n_shards=2)
        fs = cluster.fs
        fs.mkdir("/a")
        fs.mkdir("/b")
        sid_a = cluster.router.assignments["a"]
        sid_b = cluster.router.assignments["b"]
        assert sid_a != sid_b
        return cluster, sid_a, sid_b

    def test_recovery_twice_is_a_no_op(self):
        # A crash between the durable copy and the source unlink leaves
        # a stale intent; the first recovery rolls it back, the second
        # must find a converged cluster and do nothing.
        cluster, sid_a, sid_b = self._two_tops()
        cluster.fs.write_file("/a/x", b"authoritative")
        dst = cluster.shards[sid_b].fs
        dst.write_file("/b/x", b"partial copy")
        dst.write_file("/.cluster/intent-000001",
                       encode_intent(sid_a, "/a/x", "/b/x"))
        assert cluster.recover() == [(sid_a, "rolled_back")]
        assert not dst.exists("/b/x")
        assert cluster.fs.read_file("/a/x") == b"authoritative"
        assert cluster.recover() == []

    def test_competing_stale_intents_keep_exactly_one_intact_copy(self):
        # Two stale intents name the same destination path: an old one
        # whose source still exists (wants roll-back) and a committed
        # one whose source is gone (wants roll-forward).  The committed
        # rename's claim on the destination must win — deleting the
        # copy would lose the only remaining replica of its file.
        cluster, sid_a, sid_b = self._two_tops()
        cluster.fs.write_file("/a/x", b"old source")
        dst = cluster.shards[sid_b].fs
        dst.write_file("/b/x", b"committed copy")
        dst.write_file("/.cluster/intent-000001",
                       encode_intent(sid_a, "/a/x", "/b/x"))
        dst.write_file("/.cluster/intent-000002",
                       encode_intent(sid_a, "/a/gone", "/b/x"))
        outcomes = cluster.recover()
        assert sorted(outcomes) == [(sid_a, "rolled_back"),
                                    (sid_a, "rolled_forward")]
        assert dst.read_file("/b/x") == b"committed copy"
        assert cluster.fs.read_file("/a/x") == b"old source"
        assert cluster.recover() == []
