"""Tests for FFS on-disk structures: inodes, superblock, directory blocks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockdev.device import BLOCK_SIZE
from repro.errors import CorruptFileSystem, InvalidArgument
from repro.ffs import directory as dirfmt
from repro.ffs import layout
from repro.ffs.inode import Inode

names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126, exclude_characters="/"),
    min_size=1,
    max_size=24,
)


class TestInodePacking:
    def test_roundtrip(self):
        ino = Inode(42)
        ino.init_as(layout.MODE_FILE, gen=7, mtime=1.25)
        ino.size = 123456
        ino.direct[0] = 99
        ino.direct[11] = 1234
        ino.indirect = 555
        ino.nblocks = 13
        back = Inode.unpack(42, ino.pack())
        assert back.size == 123456
        assert back.direct == ino.direct
        assert back.indirect == 555
        assert back.mtime == 1.25
        assert back.gen == 7
        assert back.nblocks == 13

    def test_packed_size(self):
        ino = Inode(1)
        assert len(ino.pack()) == layout.INODE_SIZE

    def test_clear_resets(self):
        ino = Inode(1)
        ino.init_as(layout.MODE_FILE, gen=3, mtime=0.0)
        ino.direct[0] = 7
        ino.clear()
        assert ino.is_free
        assert ino.nlink == 0
        assert ino.direct[0] == 0
        assert ino.gen == 3  # generation survives reuse

    def test_kind_predicates(self):
        ino = Inode(1)
        ino.init_as(layout.MODE_DIR, 1, 0.0)
        assert ino.is_dir and not ino.is_file

    @given(
        st.integers(min_value=0, max_value=2**40),
        st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=12, max_size=12),
    )
    @settings(max_examples=100)
    def test_roundtrip_property(self, size, direct):
        packed = layout.pack_inode(1, 2, 0, 5, size, 3.5, direct, 7, 8, 9)
        fields = layout.unpack_inode(packed)
        assert fields["size"] == size
        assert fields["direct"] == direct


class TestSuperblock:
    def test_roundtrip(self):
        sb = {
            "magic": layout.FFS_MAGIC, "version": 1, "total_blocks": 3000,
            "n_cgs": 5, "blocks_per_cg": 512, "inodes_per_cg": 256,
            "itable_blocks": 8, "data_start": 10, "root_inum": 1,
            "next_gen": 17, "free_blocks": 2500, "free_inodes": 1200,
            "journal_start": 2561, "journal_blocks": 64,
        }
        assert layout.unpack_superblock(layout.pack_superblock(sb)) == sb

    def test_padded_to_block(self):
        sb = {
            "magic": 1, "version": 1, "total_blocks": 1, "n_cgs": 1,
            "blocks_per_cg": 1, "inodes_per_cg": 1, "itable_blocks": 1,
            "data_start": 1, "root_inum": 1, "next_gen": 1,
            "free_blocks": 1, "free_inodes": 1,
        }
        assert len(layout.pack_superblock(sb)) == BLOCK_SIZE


class TestDirentBlock:
    def test_fresh_block_is_empty(self):
        block = dirfmt.init_block()
        assert dirfmt.live_entries(bytes(block)) == []

    def test_add_and_find(self):
        block = dirfmt.init_block()
        assert dirfmt.add_entry(block, 5, layout.DT_FILE, "hello")
        assert dirfmt.find_entry(bytes(block), "hello") == (5, layout.DT_FILE)

    def test_add_many_until_full(self):
        block = dirfmt.init_block()
        added = 0
        while dirfmt.add_entry(block, added + 1, layout.DT_FILE, "name%05d" % added):
            added += 1
        # 16-byte records: a 4KB block holds 256.
        assert added == BLOCK_SIZE // layout.dirent_size(9)
        assert len(dirfmt.live_entries(bytes(block))) == added

    def test_remove_returns_inum(self):
        block = dirfmt.init_block()
        dirfmt.add_entry(block, 9, layout.DT_FILE, "gone")
        assert dirfmt.remove_entry(block, "gone") == 9
        assert dirfmt.find_entry(bytes(block), "gone") is None

    def test_remove_missing(self):
        block = dirfmt.init_block()
        assert dirfmt.remove_entry(block, "nope") is None

    def test_space_reclaimed_after_remove(self):
        block = dirfmt.init_block()
        i = 0
        while dirfmt.add_entry(block, i + 1, layout.DT_FILE, "n%06d" % i):
            i += 1
        dirfmt.remove_entry(block, "n000003")
        assert dirfmt.add_entry(block, 999, layout.DT_FILE, "newone")

    def test_other_entries_untouched_by_remove(self):
        block = dirfmt.init_block()
        for i in range(10):
            dirfmt.add_entry(block, i + 1, layout.DT_FILE, "k%02d" % i)
        dirfmt.remove_entry(block, "k04")
        live = dict((n, i) for n, i, _ in dirfmt.live_entries(bytes(block)))
        assert len(live) == 9
        assert live["k00"] == 1 and live["k09"] == 10

    def test_zero_inum_rejected(self):
        block = dirfmt.init_block()
        with pytest.raises(InvalidArgument):
            dirfmt.add_entry(block, 0, layout.DT_FILE, "x")

    def test_corrupt_reclen_detected(self):
        block = dirfmt.init_block()
        block[4] = 1  # reclen low byte -> absurd value
        block[5] = 0
        with pytest.raises(CorruptFileSystem):
            list(dirfmt.iter_entries(bytes(block)))

    def test_free_bytes_decreases_monotonically(self):
        block = dirfmt.init_block()
        prev = dirfmt.free_bytes(bytes(block))
        for i in range(20):
            dirfmt.add_entry(block, i + 1, layout.DT_FILE, "mono%03d" % i)
            cur = dirfmt.free_bytes(bytes(block))
            assert cur <= prev
            prev = cur

    @given(st.lists(names, min_size=1, max_size=60, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_add_remove_property(self, entry_names):
        """Entries added then individually removed leave no live entries,
        and the reclen chain always tiles the block exactly."""
        block = dirfmt.init_block()
        inserted = []
        for i, name in enumerate(entry_names):
            if dirfmt.add_entry(block, i + 1, layout.DT_FILE, name):
                inserted.append(name)
        live = {n for n, _, _ in dirfmt.live_entries(bytes(block))}
        assert live == set(inserted)
        for name in inserted:
            assert dirfmt.remove_entry(block, name) is not None
            # Chain invariant holds after every mutation.
            list(dirfmt.iter_entries(bytes(block)))
        assert dirfmt.live_entries(bytes(block)) == []

    @given(st.lists(names, min_size=1, max_size=40, unique=True), st.data())
    @settings(max_examples=60, deadline=None)
    def test_interleaved_add_remove_property(self, entry_names, data):
        block = dirfmt.init_block()
        live = {}
        for i, name in enumerate(entry_names):
            if live and data.draw(st.booleans(), label="remove?"):
                victim = data.draw(st.sampled_from(sorted(live)), label="victim")
                assert dirfmt.remove_entry(block, victim) == live.pop(victim)
            if dirfmt.add_entry(block, i + 1, layout.DT_FILE, name):
                live[name] = i + 1
        found = {n: i for n, i, _ in dirfmt.live_entries(bytes(block))}
        assert found == live
