"""Runtime agreement check for B001 (buffer ownership).

B001's static claim is that no function mutates a buffer after handing
it to a device-boundary write.  The observable consequence at runtime:
once ``fs.sync()`` has drained the dirty set, every *clean* cached
buffer must hold exactly the bytes last shipped to the device for its
block — if some code path mutated a buffer after its final handoff
(without re-marking it dirty), the in-memory view diverges from the
on-disk image and this tracer catches it, regardless of whether the
mutation went through ``__setitem__`` or a C-level buffer-protocol
write like ``struct.pack_into``.

The tracer wraps the device's four handoff methods (the same set B001
keys on: ``write_block`` / ``write_extent`` / ``write_batch`` /
``poke_block``) and snapshots each payload at the moment of handoff —
the instant ownership transfers under the B001 contract.  A
hypothesis-driven small-file workload (the fig-5 shape: create, read,
overwrite, delete over a flat tree of small files) then exercises the
real allocation, directory, and flush-gathering paths, asserting the
invariant after every sync.

The positive control demonstrates the harness is not vacuous: a
hand-injected mutation-after-handoff trips the runtime tracer, and the
same code shape trips B001 statically — the two detectors agree in
both directions.
"""

from __future__ import annotations

from typing import Dict, List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import lint_sources
from repro.lint.flow import HANDOFF_METHODS
from tests.conftest import make_cffs, make_ffs

#: handoff seams traced at runtime; must stay == B001's HANDOFF_METHODS.
_TRACED = ("write_block", "write_extent", "write_batch", "poke_block")


def test_traced_seams_match_b001_handoff_set():
    # If B001 grows a new device seam, this trips and the tracer below
    # must learn to wrap it too — the two detectors watch the same door.
    assert frozenset(_TRACED) == HANDOFF_METHODS


def trace_handoffs(device) -> Dict[int, bytes]:
    """Wrap the device's write seams; returns the live handoff log.

    The log maps block number -> bytes snapshotted at the most recent
    handoff of that block.  Snapshots are taken on entry, before the
    device acts: that is the instant B001 says ownership transfers.
    """
    shipped: Dict[int, bytes] = {}
    real_block = device.write_block
    real_extent = device.write_extent
    real_batch = device.write_batch
    real_poke = device.poke_block

    def write_block(bno, data):
        shipped[bno] = bytes(data)
        return real_block(bno, data)

    def write_extent(start, blocks):
        for i, data in enumerate(blocks):
            shipped[start + i] = bytes(data)
        return real_extent(start, blocks)

    def write_batch(writes):
        for bno, data in writes.items():
            shipped[bno] = bytes(data)
        return real_batch(writes)

    def poke_block(bno, data):
        shipped[bno] = bytes(data)
        return real_poke(bno, data)

    device.write_block = write_block
    device.write_extent = write_extent
    device.write_batch = write_batch
    device.poke_block = poke_block
    return shipped


def divergences(fs, shipped: Dict[int, bytes]) -> List[int]:
    """Clean cached buffers whose bytes differ from their last handoff.

    Dirty buffers are excluded — mutating a buffer and re-marking it
    dirty is the legitimate life cycle; the hazard B001 (and this
    tracer) rejects is mutation after the *final* handoff, which is
    exactly a clean buffer that no longer matches what went to disk.
    """
    out: List[int] = []
    for bno, buf in fs.cache._phys.items():
        if bno in fs.cache._dirty:
            continue
        want = shipped.get(bno)
        if want is not None and bytes(buf.data) != want:
            out.append(bno)
    return out


def _paths(n_files: int) -> List[str]:
    return ["/bench/f%03d" % i for i in range(n_files)]


@st.composite
def fig5_scripts(draw):
    """A miniature fig-5 workload: ops over a small flat file set."""
    n_files = draw(st.integers(min_value=3, max_value=10))
    file_size = draw(st.sampled_from([100, 1024, 4096, 9000]))
    fill = draw(st.integers(min_value=0, max_value=255))
    # After the create phase, a random mix of the other three phases'
    # per-file operations, with periodic syncs.
    ops = draw(st.lists(
        st.tuples(st.sampled_from(["read", "overwrite", "delete", "sync"]),
                  st.integers(min_value=0, max_value=n_files - 1)),
        min_size=4, max_size=24))
    return n_files, file_size, fill, ops


@pytest.mark.parametrize("factory", [make_ffs, make_cffs],
                         ids=["ffs", "cffs"])
@settings(max_examples=8, deadline=None)
@given(script=fig5_scripts())
def test_clean_buffers_match_last_handoff(factory, script):
    n_files, file_size, fill, ops = script
    fs = factory()
    shipped = trace_handoffs(fs.cache.device)
    paths = _paths(n_files)
    live = set()

    fs.mkdir("/bench")
    payload = bytes([fill]) * file_size
    for p in paths:
        fs.write_file(p, payload)
        live.add(p)
    fs.sync()
    assert divergences(fs, shipped) == []

    for op, idx in ops:
        p = paths[idx]
        if op == "read" and p in live:
            assert len(fs.read_file(p)) == file_size
        elif op == "overwrite" and p in live:
            fs.write_file(p, bytes([(fill + idx + 1) % 256]) * file_size)
        elif op == "delete" and p in live:
            fs.unlink(p)
            live.discard(p)
        elif op == "sync":
            fs.sync()
            assert divergences(fs, shipped) == []
    fs.sync()
    assert divergences(fs, shipped) == []


def test_positive_control_runtime_tracer_catches_injection():
    # Prove the tracer is not vacuous: mutate a clean buffer after its
    # final handoff (the exact hazard B001 rejects) and watch it fire.
    fs = make_cffs()
    shipped = trace_handoffs(fs.cache.device)
    fs.mkdir("/bench")
    fs.write_file("/bench/f000", b"x" * 1024)
    fs.sync()
    assert divergences(fs, shipped) == []

    victim = next(
        buf for bno, buf in fs.cache._phys.items()
        if bno in shipped and bno not in fs.cache._dirty)
    victim.data[0] = (victim.data[0] + 1) % 256  # mutation after handoff
    assert divergences(fs, shipped) == [victim.bno]


def test_positive_control_static_rule_agrees():
    # The same shape, written as source, is what B001 flags statically:
    # the two detectors condemn the identical pattern.
    result = lint_sources({
        "src/repro/cache/writeback.py": (
            "def flush(dev, bno):\n"
            "    data = bytearray(4096)\n"
            "    dev.write_block(bno, data)\n"
            "    data[0] = (data[0] + 1) % 256\n"
        ),
    }, flow=True)
    assert any(f.rule == "B001" and not f.suppressed for f in result.findings)
