"""Chaos soak and resilient crash-sweep acceptance tests.

These encode the PR's acceptance criteria directly: under a sustained
transient + hard fault schedule the soak completes with zero undetected
corruption and >= 99% in-service success; spare exhaustion demotes to
READ_ONLY instead of crashing; post-soak fsck is clean; and identical
seeds render byte-identical reports.  The resilient crash-point sweep
proves repair at remap-write boundaries.
"""

from dataclasses import replace

import pytest

from repro.cache.policy import MetadataPolicy
from repro.faults import render_chaos, run_chaos, scenario
from repro.faults.harness import crash_point_sweep

# A scaled-down soak for the tests that run more than once.
QUICK = replace(scenario("sustained"), n_files=60, weak_count=12,
                bad_write_count=12, bad_read_count=3, rot_count=3)


class TestChaosSoak:
    def test_sustained_scenario_passes(self):
        report = run_chaos(scenario("sustained"))
        passed, reasons = report.verdict()
        assert passed, "; ".join(reasons) + "\n" + render_chaos(report)
        assert report.ops.undetected_corruption == 0
        assert report.ops.in_service_rate >= 0.99
        assert report.fsck_res_clean and report.fsck_fs_clean
        # The schedule actually bit: faults were absorbed, not absent.
        assert report.resilience.get("remaps", 0) > 0
        assert report.ops.total > 0 and report.files_verified > 0

    def test_exhaust_scenario_demotes_to_read_only(self):
        report = run_chaos(scenario("exhaust"))
        passed, reasons = report.verdict()
        assert passed, "; ".join(reasons) + "\n" + render_chaos(report)
        assert any(t[2] == "READ_ONLY" for t in report.health_log)
        assert report.final_state in ("READ_ONLY", "DEGRADED")
        assert report.ops.undetected_corruption == 0

    def test_identical_seeds_render_byte_identical_reports(self):
        first = render_chaos(run_chaos(QUICK))
        second = render_chaos(run_chaos(QUICK))
        assert first == second

    def test_different_seeds_differ(self):
        base = render_chaos(run_chaos(QUICK))
        other = render_chaos(run_chaos(replace(QUICK, seed=QUICK.seed + 1)))
        assert base != other

    def test_report_renders_verdict_line(self):
        text = render_chaos(run_chaos(QUICK))
        assert text.splitlines()[-1].lstrip().startswith("verdict: ")
        assert "in-service" in text


class TestResilientCrashSweep:
    """Crash windows land between a spare write and its header write;
    every image must still repair to the pre-crash checkpoint."""

    @pytest.mark.parametrize("label", ["cffs", "ffs"])
    def test_all_points_recover(self, label):
        result = crash_point_sweep(label, MetadataPolicy.SYNC_METADATA,
                                   n_files=12, stride=29, sync_every=4,
                                   resilient=True)
        assert result.resilient
        assert result.n_points > 3
        bad = [p for p in result.points if not p.recovered]
        assert not bad, "\n".join(p.detail for p in bad)
