"""Tests for the ``repro perfbench`` harness and its CI gate.

The snapshot schema and the regression gate are what CI trusts, so
they get direct unit coverage on synthetic snapshots (fast, exact),
plus one real bounded run proving the harness produces a schema-valid
snapshot that passes its own gate against itself.
"""

from __future__ import annotations

import copy

import pytest

from repro.bench import perfbench as pb


def _entry(ops=1000, wall=0.5, sim=2.0, alloc_count=500):
    return {
        "description": "synthetic",
        "ops": ops,
        "wall_seconds": wall,
        "sim_seconds": sim,
        "ops_per_wall_sec": ops / wall,
        "wall_sec_per_sim_sec": wall / sim,
        "alloc": {
            "peak_kb": 128.0,
            "net_count": alloc_count,
            "net_kb": 64.0,
            "per_layer": {"cache": {"count": alloc_count, "kb": 64.0}},
        },
    }


def _snapshot(calib=1000.0, **entries):
    if not entries:
        entries = {"smallfile_create": _entry()}
    return {
        "schema": pb.SCHEMA,
        "workload_rev": pb.WORKLOAD_REV,
        "python": "3.11.0",
        "calib_ops_per_sec": calib,
        "scenarios": entries,
    }


class TestValidateSnapshot:
    def test_valid(self):
        assert pb.validate_snapshot(_snapshot()) == []

    def test_not_an_object(self):
        assert pb.validate_snapshot([1, 2]) == ["snapshot is not a JSON object"]

    def test_wrong_schema(self):
        snap = _snapshot()
        snap["schema"] = "something-else/9"
        assert any("schema" in p for p in pb.validate_snapshot(snap))

    def test_missing_workload_rev(self):
        snap = _snapshot()
        del snap["workload_rev"]
        assert any("workload_rev" in p for p in pb.validate_snapshot(snap))

    def test_empty_scenarios(self):
        snap = _snapshot()
        snap["scenarios"] = {}
        assert any("scenarios" in p for p in pb.validate_snapshot(snap))

    def test_negative_metric(self):
        snap = _snapshot(s=_entry(wall=-1.0))
        assert any("wall_seconds" in p for p in pb.validate_snapshot(snap))

    def test_missing_timing_key(self):
        snap = _snapshot()
        del snap["scenarios"]["smallfile_create"]["ops_per_wall_sec"]
        assert any("ops_per_wall_sec" in p for p in pb.validate_snapshot(snap))

    def test_malformed_alloc(self):
        snap = _snapshot()
        snap["scenarios"]["smallfile_create"]["alloc"] = {"peak_kb": "lots"}
        problems = pb.validate_snapshot(snap)
        assert any("alloc.peak_kb" in p for p in problems)
        assert any("per_layer" in p for p in problems)

    def test_alloc_optional(self):
        snap = _snapshot()
        del snap["scenarios"]["smallfile_create"]["alloc"]
        assert pb.validate_snapshot(snap) == []


class TestCheckSnapshot:
    def test_identical_passes(self):
        base = _snapshot()
        assert pb.check_snapshot(copy.deepcopy(base), base) == []

    def test_small_ops_dip_tolerated(self):
        base = _snapshot(s=_entry(ops=1000, wall=1.0))       # 1000 ops/s
        cur = _snapshot(s=_entry(ops=1000, wall=1.0 / 0.95))  # -5%
        assert pb.check_snapshot(cur, base) == []

    def test_large_ops_drop_fails(self):
        base = _snapshot(s=_entry(ops=1000, wall=1.0))   # 1000 ops/s
        cur = _snapshot(s=_entry(ops=1000, wall=1.25))   # 800 ops/s, -20%
        failures = pb.check_snapshot(cur, base)
        assert any("ops/sec regressed" in f for f in failures)

    def test_alloc_regression_fails(self):
        base = _snapshot(s=_entry(alloc_count=1000))
        cur = _snapshot(s=_entry(alloc_count=2000))
        failures = pb.check_snapshot(cur, base)
        assert any("allocation count regressed" in f for f in failures)

    def test_alloc_within_slack_passes(self):
        base = _snapshot(s=_entry(alloc_count=1000))
        cur = _snapshot(s=_entry(
            alloc_count=1000 + int(1000 * pb.ALLOC_TOLERANCE)))
        assert pb.check_snapshot(cur, base) == []

    def test_workload_rev_mismatch(self):
        base = _snapshot()
        cur = _snapshot()
        cur["workload_rev"] = pb.WORKLOAD_REV + 1
        failures = pb.check_snapshot(cur, base)
        assert failures and "workload_rev mismatch" in failures[0]

    def test_missing_scenario_fails(self):
        base = _snapshot()
        cur = _snapshot(other=_entry())
        failures = pb.check_snapshot(cur, base)
        assert any("missing from current run" in f for f in failures)

    def test_invalid_inputs_reported_before_comparison(self):
        failures = pb.check_snapshot({}, _snapshot())
        assert any(f.startswith("current snapshot invalid") for f in failures)

    def test_calibration_cancels_machine_speed(self):
        """A 2x slower machine halves scenario AND calib ops: passes."""
        base = _snapshot(calib=1000.0, s=_entry(ops=1000, wall=1.0))
        cur = _snapshot(calib=500.0, s=_entry(ops=1000, wall=2.0))
        assert pb.check_snapshot(cur, base) == []

    def test_calibration_exposes_real_regression(self):
        """Same machine speed, slower code: normalization cannot hide it."""
        base = _snapshot(calib=1000.0, s=_entry(ops=1000, wall=1.0))
        cur = _snapshot(calib=1000.0, s=_entry(ops=1000, wall=2.0))
        failures = pb.check_snapshot(cur, base)
        assert any("ops/sec regressed" in f for f in failures)
        # A faster machine with genuinely slower code still fails.
        cur_fast = _snapshot(calib=2000.0, s=_entry(ops=1000, wall=1.0))
        assert any("ops/sec regressed" in f
                   for f in pb.check_snapshot(cur_fast, base))

    def test_missing_calibration_falls_back_to_raw(self):
        base = _snapshot(s=_entry(ops=1000, wall=1.0))
        del base["calib_ops_per_sec"]
        cur = _snapshot(calib=500.0, s=_entry(ops=1000, wall=1.25))
        failures = pb.check_snapshot(cur, base)
        assert any("ops/sec regressed" in f for f in failures)

    def test_per_scenario_calibration_wins(self):
        base = _snapshot(calib=1000.0, s=_entry(ops=1000, wall=1.0))
        cur = _snapshot(calib=1000.0, s=_entry(ops=1000, wall=2.0))
        # The scenario ran in a 2x-slow window: its adjacent calib
        # score overrides the snapshot-level one and rescues the run.
        cur["scenarios"]["s"]["calib_ops_per_sec"] = 500.0
        assert pb.check_snapshot(cur, base) == []

    def test_per_scenario_tolerance_override(self):
        base = _snapshot(s=_entry(ops=1000, wall=1.0))
        base["scenarios"]["s"]["ops_tolerance"] = 0.30
        cur = _snapshot(s=_entry(ops=1000, wall=1.25))  # -20%
        assert pb.check_snapshot(cur, base) == []
        worse = _snapshot(s=_entry(ops=1000, wall=2.0))  # -50%
        assert any("ops/sec regressed" in f
                   for f in pb.check_snapshot(worse, base))
        base["scenarios"]["s"]["ops_tolerance"] = 2.0  # invalid
        assert any("ops_tolerance" in p
                   for p in pb.validate_snapshot(base))

    def test_bad_calibration_value_rejected(self):
        snap = _snapshot(calib=-3.0)
        assert any("calib_ops_per_sec" in p for p in pb.validate_snapshot(snap))
        snap = _snapshot()
        snap["scenarios"]["smallfile_create"]["calib_ops_per_sec"] = 0
        assert any("calib_ops_per_sec" in p for p in pb.validate_snapshot(snap))


class TestReferenceAndRendering:
    def test_attach_reference_computes_speedup(self):
        old = _snapshot(s=_entry(ops=1000, wall=1.0))   # 1000 ops/s
        new = _snapshot(s=_entry(ops=1000, wall=0.5))   # 2000 ops/s
        pb.attach_reference(new, old, ref_path="old.json")
        assert new["speedup"]["s"] == pytest.approx(2.0)
        assert new["reference"]["path"] == "old.json"
        assert new["reference"]["ops_per_wall_sec"]["s"] == pytest.approx(1000.0)

    def test_render_includes_scenarios_and_speedup(self):
        snap = _snapshot()
        pb.attach_reference(snap, _snapshot(), ref_path="base.json")
        text = pb.render_snapshot(snap)
        assert "smallfile_create" in text
        assert "speedup vs base.json" in text

    def test_layer_mapping(self):
        assert pb._layer_of("/x/src/repro/cache/buffercache.py") == "cache"
        assert pb._layer_of("/x/src/repro/clock.py") == "clock"
        assert pb._layer_of("/usr/lib/python3/json/decoder.py") == "other"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            pb.run_perfbench(["no_such_scenario"], repeats=1,
                             measure_alloc=False)


def test_real_run_is_schema_valid_and_self_consistent():
    """One bounded real run: valid schema, passes its own gate."""
    snap = pb.run_perfbench(["smallfile_create"], repeats=1)
    assert pb.validate_snapshot(snap) == []
    assert pb.check_snapshot(copy.deepcopy(snap), snap) == []
    entry = snap["scenarios"]["smallfile_create"]
    assert entry["ops"] == 2500
    assert entry["sim_seconds"] > 0
    assert "per_layer" in entry["alloc"]
    assert entry["calib_ops_per_sec"] > 0
