"""Tests for the grouped allocator and the block-mapping trees."""

import pytest

from repro.cache.buffercache import BufferCache
from repro.errors import NoSpace
from repro.ffs import mapping
from repro.ffs.alloc import GroupedAllocator
from repro.ffs.layout import NDIRECT, PTRS_PER_INDIRECT
from tests.conftest import make_device


def make_alloc(n_cgs: int = 3, blocks_per_cg: int = 128, data_start: int = 4):
    cache = BufferCache(make_device(), 256)
    alloc = GroupedAllocator(
        cache,
        n_cgs=n_cgs,
        blocks_per_cg=blocks_per_cg,
        inodes_per_cg=32,
        data_start=data_start,
        cg_base_of=lambda cgi: 1 + cgi * blocks_per_cg,
    )
    # Initialize descriptors and bitmaps (mkfs-lite).
    from repro.ffs.layout import pack_cg

    for cgi in range(n_cgs):
        base = 1 + cgi * blocks_per_cg
        desc = cache.create(base)
        desc.data[:] = pack_cg(blocks_per_cg - data_start, 32, data_start, 0)
        bmap = cache.create(base + 1)
        for off in range(data_start):
            bmap.data[off >> 3] |= 1 << (off & 7)
        cache.mark_dirty(base)
        cache.mark_dirty(base + 1)
    return alloc, cache


class TestBlockAllocation:
    def test_alloc_in_preferred_group(self):
        alloc, _ = make_alloc()
        bno = alloc.alloc_block(1)
        assert alloc.cg_of_block(bno) == 1

    def test_alloc_marks_bitmap(self):
        alloc, _ = make_alloc()
        bno = alloc.alloc_block(0)
        assert alloc.block_is_allocated(bno)

    def test_alloc_unique(self):
        alloc, _ = make_alloc()
        seen = {alloc.alloc_block(0) for _ in range(100)}
        assert len(seen) == 100

    def test_free_then_realloc(self):
        alloc, _ = make_alloc()
        bno = alloc.alloc_block(0)
        alloc.free_block(bno)
        assert not alloc.block_is_allocated(bno)

    def test_double_free_rejected(self):
        alloc, _ = make_alloc()
        bno = alloc.alloc_block(0)
        alloc.free_block(bno)
        with pytest.raises(NoSpace):
            alloc.free_block(bno)

    def test_spill_to_next_group(self):
        alloc, _ = make_alloc(n_cgs=2, blocks_per_cg=16, data_start=4)
        for _ in range(12):
            assert alloc.cg_of_block(alloc.alloc_block(0)) == 0
        assert alloc.cg_of_block(alloc.alloc_block(0)) == 1

    def test_exhaustion_raises(self):
        alloc, _ = make_alloc(n_cgs=1, blocks_per_cg=16, data_start=4)
        for _ in range(12):
            alloc.alloc_block(0)
        with pytest.raises(NoSpace):
            alloc.alloc_block(0)

    def test_pref_offset_exact(self):
        alloc, _ = make_alloc()
        bno = alloc.alloc_block(0, pref_offset=50)
        assert bno == 1 + 50

    def test_pref_offset_next_fit(self):
        alloc, _ = make_alloc()
        first = alloc.alloc_block(0, pref_offset=50)
        second = alloc.alloc_block(0, pref_offset=50)
        assert second == first + 1

    def test_spread_leaves_gaps(self):
        alloc, _ = make_alloc()
        a = alloc.alloc_block(0, spread=6)
        b = alloc.alloc_block(0, spread=6)
        c = alloc.alloc_block(0, spread=6)
        assert b - a == 7
        assert c - b == 7

    def test_spread_moves_on_not_wraps(self):
        """When a group's strides run out, spreading continues in the
        next group instead of densely filling the gaps."""
        alloc, _ = make_alloc(n_cgs=2, blocks_per_cg=64, data_start=4)
        cgs = [alloc.cg_of_block(alloc.alloc_block(0, spread=6)) for _ in range(12)]
        assert 1 in cgs

    def test_dense_fallback_under_pressure(self):
        """With every stride exhausted, spreading falls back to dense."""
        alloc, _ = make_alloc(n_cgs=1, blocks_per_cg=32, data_start=4)
        got = [alloc.alloc_block(0, spread=6) for _ in range(20)]
        assert len(set(got)) == 20  # all succeeded, gaps got used

    def test_free_counts_tracked(self):
        alloc, _ = make_alloc()
        before = alloc.free_blocks_total
        bnos = [alloc.alloc_block(0) for _ in range(10)]
        assert alloc.free_blocks_total == before - 10
        for b in bnos:
            alloc.free_block(b)
        assert alloc.free_blocks_total == before


class TestContiguous:
    def test_contiguous_run(self):
        alloc, _ = make_alloc()
        start = alloc.alloc_contiguous(0, 16, align=16)
        assert start is not None
        for i in range(16):
            assert alloc.block_is_allocated(start + i)

    def test_alignment(self):
        alloc, _ = make_alloc()
        alloc.alloc_block(0)  # disturb the start of the area
        start = alloc.alloc_contiguous(0, 16, align=16)
        assert (start - 1 - 4) % 16 == 0  # aligned within the data area

    def test_contiguous_none_when_fragmented(self):
        alloc, _ = make_alloc(n_cgs=1, blocks_per_cg=64, data_start=4)
        # Allocate every other block: no 4-run remains.
        area = 64 - 4
        for off in range(0, area, 2):
            alloc.alloc_block(0, pref_offset=4 + off)
        assert alloc.alloc_contiguous(0, 4) is None

    def test_contiguous_spills_groups(self):
        alloc, _ = make_alloc(n_cgs=2, blocks_per_cg=64, data_start=4)
        # Fill group 0 completely.
        while True:
            try:
                b = alloc.alloc_block(0)
            except NoSpace:
                break
            if alloc.cg_of_block(b) != 0:
                alloc.free_block(b)
                break
        start = alloc.alloc_contiguous(0, 16, align=16)
        assert start is not None
        assert alloc.cg_of_block(start) == 1


class TestInodeAllocation:
    def test_alloc_in_pref_group(self):
        alloc, _ = make_alloc()
        inum = alloc.alloc_inode(1)
        assert (inum - 1) // 32 == 1

    def test_alloc_unique(self):
        alloc, _ = make_alloc()
        inums = {alloc.alloc_inode(0) for _ in range(40)}
        assert len(inums) == 40

    def test_free_and_reuse(self):
        alloc, _ = make_alloc()
        inum = alloc.alloc_inode(0)
        alloc.free_inode(inum)
        assert not alloc.inode_is_allocated(inum)

    def test_double_free_rejected(self):
        alloc, _ = make_alloc()
        inum = alloc.alloc_inode(0)
        alloc.free_inode(inum)
        with pytest.raises(NoSpace):
            alloc.free_inode(inum)

    def test_exhaustion(self):
        alloc, _ = make_alloc(n_cgs=1)
        for _ in range(32):
            alloc.alloc_inode(0)
        with pytest.raises(NoSpace):
            alloc.alloc_inode(0)

    def test_mirrors_survive_drop(self):
        alloc, cache = make_alloc()
        inum = alloc.alloc_inode(0)
        bno = alloc.alloc_block(0)
        alloc.store_descriptors()
        cache.flush()
        alloc.drop_mirrors()
        assert alloc.inode_is_allocated(inum)
        assert alloc.block_is_allocated(bno)


class _FakeInode:
    def __init__(self):
        self.direct = [0] * NDIRECT
        self.indirect = 0
        self.dindirect = 0


class TestMapping:
    def setup_method(self):
        self.cache = BufferCache(make_device(), 256)
        self.next = [1000]

    def alloc(self) -> int:
        self.next[0] += 1
        return self.next[0]

    def test_direct_lookup_hole(self):
        assert mapping.bmap_lookup(self.cache, _FakeInode(), 0) == 0

    def test_direct_ensure(self):
        ino = _FakeInode()
        bno, created = mapping.bmap_ensure(self.cache, ino, 3, self.alloc, self.alloc)
        assert created
        assert ino.direct[3] == bno
        again, created2 = mapping.bmap_ensure(self.cache, ino, 3, self.alloc, self.alloc)
        assert not created2 and again == bno

    def test_single_indirect(self):
        ino = _FakeInode()
        idx = NDIRECT + 5
        bno, created = mapping.bmap_ensure(self.cache, ino, idx, self.alloc, self.alloc)
        assert created
        assert ino.indirect != 0
        assert mapping.bmap_lookup(self.cache, ino, idx) == bno

    def test_double_indirect(self):
        ino = _FakeInode()
        idx = NDIRECT + PTRS_PER_INDIRECT + 7
        bno, _ = mapping.bmap_ensure(self.cache, ino, idx, self.alloc, self.alloc)
        assert ino.dindirect != 0
        assert mapping.bmap_lookup(self.cache, ino, idx) == bno

    def test_negative_index_rejected(self):
        from repro.errors import InvalidArgument

        with pytest.raises(InvalidArgument):
            mapping.bmap_lookup(self.cache, _FakeInode(), -1)

    def test_enumerate_matches_ensured(self):
        ino = _FakeInode()
        indices = [0, 5, NDIRECT + 1, NDIRECT + PTRS_PER_INDIRECT + 2]
        expected = {}
        for idx in indices:
            bno, _ = mapping.bmap_ensure(self.cache, ino, idx, self.alloc, self.alloc)
            expected[idx] = bno
        found = dict(mapping.enumerate_blocks(self.cache, ino))
        assert found == expected

    def test_truncate_frees_everything(self):
        ino = _FakeInode()
        freed = []
        for idx in [0, 1, NDIRECT + 3, NDIRECT + PTRS_PER_INDIRECT]:
            mapping.bmap_ensure(self.cache, ino, idx, self.alloc, self.alloc)
        n = mapping.truncate_blocks(self.cache, ino, 0, freed.append)
        assert n == 4
        assert ino.indirect == 0 and ino.dindirect == 0
        assert all(b == 0 for b in ino.direct)
        # Indirect blocks were freed too (more frees than data blocks).
        assert len(freed) > 4

    def test_truncate_partial_keeps_prefix(self):
        ino = _FakeInode()
        for idx in range(5):
            mapping.bmap_ensure(self.cache, ino, idx, self.alloc, self.alloc)
        kept = ino.direct[:2]
        n = mapping.truncate_blocks(self.cache, ino, 2, lambda b: None)
        assert n == 3
        assert ino.direct[:2] == kept
        assert ino.direct[2] == 0

    def test_truncate_keeps_indirect_when_needed(self):
        ino = _FakeInode()
        for idx in (NDIRECT, NDIRECT + 1):
            mapping.bmap_ensure(self.cache, ino, idx, self.alloc, self.alloc)
        mapping.truncate_blocks(self.cache, ino, NDIRECT + 1, lambda b: None)
        assert ino.indirect != 0
        assert mapping.bmap_lookup(self.cache, ino, NDIRECT) != 0
        assert mapping.bmap_lookup(self.cache, ino, NDIRECT + 1) == 0
