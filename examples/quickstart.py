#!/usr/bin/env python3
"""Quickstart: a C-FFS file system on a simulated 1996 disk.

Creates a small mail-spool-shaped directory, shows how embedded inodes
and explicit grouping place data, measures warm vs cold access in
simulated time, and finishes with an offline consistency check.

Run:  python examples/quickstart.py
"""

from repro import MetadataPolicy, fsck_cffs, make_cffs
from repro.core.filesystem import CFFSConfig


def main() -> None:
    fs = make_cffs(config=CFFSConfig(policy=MetadataPolicy.SYNC_METADATA))
    disk = fs.device.disk
    clock = fs.device.clock

    print("Fresh C-FFS on a simulated %s (%.2f GB, %.0f RPM)" % (
        disk.profile.name,
        disk.profile.capacity_bytes / 1e9,
        disk.profile.rpm,
    ))
    print()

    # A directory of small files: one explicit group holds them all.
    fs.mkdir("/inbox")
    for i in range(12):
        fs.write_file("/inbox/mail%03d" % i, b"Subject: hello %d\n\nbody\n" % i)
    fs.sync()

    st = fs.stat("/inbox/mail000")
    print("mail000: %d bytes, inode embedded=%s, data grouped=%s" % (
        st.size, st.embedded, st.grouped,
    ))
    blocks = sorted(fs._resolve("/inbox/mail%03d" % i).direct[0] for i in range(12))
    print("data blocks of the 12 mails:", blocks)
    print("  -> physically adjacent: one disk request reads them all")
    print()

    # Cold read: drop every cache, read one mail, then its siblings.
    fs.drop_caches()
    t0 = clock.now
    fs.read_file("/inbox/mail000")
    first = clock.now - t0
    t0 = clock.now
    for i in range(1, 12):
        fs.read_file("/inbox/mail%03d" % i)
    rest = clock.now - t0
    print("cold read of mail000:      %6.2f ms (one group-sized request)" % (first * 1e3))
    print("reads of 11 siblings:      %6.2f ms (all buffer cache hits)" % (rest * 1e3))
    print()

    # A large file migrates out of the group and streams.
    fs.write_file("/inbox/attachment.bin", bytes(256 * 1024))
    st = fs.stat("/inbox/attachment.bin")
    print("attachment.bin: %d KB, grouped=%s (large files stay clustered instead)"
          % (st.size // 1024, st.grouped))
    print()

    # A hard link externalizes the inode (it can no longer live inside
    # a single directory entry).
    fs.link("/inbox/mail000", "/inbox/mail000.bak")
    st = fs.stat("/inbox/mail000")
    print("after hard link: nlink=%d, embedded=%s (externalized inode file)"
          % (st.nlink, st.embedded))
    print()

    fs.sync()
    report = fsck_cffs(fs.device)
    print(report.render())
    print()
    print("disk requests so far: %d reads, %d writes; simulated time %.3f s"
          % (disk.stats.reads, disk.stats.writes, clock.now))


if __name__ == "__main__":
    main()
