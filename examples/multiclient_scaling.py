#!/usr/bin/env python3
"""Multi-client scaling: C-FFS vs. an FFS-style baseline under load.

Sweeps the number of concurrent clients sharing one disk arm and plots
aggregate files/s and read p99 latency for both file systems.  The
point the sweep makes: fewer, larger disk requests matter *more* under
contention — every request C-FFS avoids is queueing delay the other
clients never see, so the throughput gap widens and the latency tail
shortens as clients are added.

Run:  python examples/multiclient_scaling.py
"""

from repro.analysis.report import bar_chart, format_series
from repro.engine import multiclient_scaling, render_scaling

CLIENT_COUNTS = (1, 2, 4, 8)
FILES_PER_CLIENT = 40


def main() -> None:
    print("Sweeping %s clients, %d files each, ffs vs cffs..."
          % (list(CLIENT_COUNTS), FILES_PER_CLIENT))
    print()
    points = multiclient_scaling(
        client_counts=CLIENT_COUNTS,
        labels=("ffs", "cffs"),
        files_per_client=FILES_PER_CLIENT,
    )
    print(render_scaling(points))
    print()

    ffs, cffs = points["ffs"], points["cffs"]
    print(format_series(
        "Aggregate read throughput vs. client count",
        "clients",
        CLIENT_COUNTS,
        [("ffs", [p.read_files_per_second for p in ffs]),
         ("cffs", [p.read_files_per_second for p in cffs])],
        unit="files/s",
    ))
    print()
    print(format_series(
        "Read p99 latency vs. client count",
        "clients",
        CLIENT_COUNTS,
        [("ffs", [p.read_p99 * 1e3 for p in ffs]),
         ("cffs", [p.read_p99 * 1e3 for p in cffs])],
        unit="ms",
    ))
    print()

    busiest = CLIENT_COUNTS[-1]
    print(bar_chart(
        "Read files/s at %d clients" % busiest,
        [("ffs", ffs[-1].read_files_per_second),
         ("cffs", cffs[-1].read_files_per_second)],
        unit="files/s",
    ))
    print()
    print("At %d clients both queues stay deep (%.1f ffs, %.1f cffs), but a"
          % (busiest, ffs[-1].mean_queue_depth, cffs[-1].mean_queue_depth))
    print("C-FFS file needs fewer trips through it: each queued request moves")
    print("a whole group, so the same depth costs far less time per file and")
    print("the p99 tail is less than half the baseline's.")


if __name__ == "__main__":
    main()
