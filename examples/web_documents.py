#!/usr/bin/env python3
"""Application-hint grouping for hypertext documents (paper §6).

A web site scatters each document's files across type-based
directories, so name-space grouping co-locates the wrong things.
This example serves the same site three ways and shows why the paper
proposes passing grouping hints through the file system interface.

Run:  python examples/web_documents.py
"""

from repro.analysis import Table
from repro.cache.policy import MetadataPolicy
from repro.workloads.configs import build_filesystem
from repro.workloads.hypertext import build_site, serve_documents


def main() -> None:
    results = []
    for label, hints in (("conventional", False), ("cffs", False), ("cffs", True)):
        fs = build_filesystem(label, MetadataPolicy.SYNC_METADATA)
        docs = build_site(fs, n_documents=80, use_hints=hints)
        name = label + ("+hints" if hints else "")
        results.append(serve_documents(fs, docs, label=name))
        print("built site on %-12s: %d documents, %.1f MB" % (
            name, len(docs), sum(d.total_bytes for d in docs) / 1e6,
        ))
    print()

    table = Table(
        "Serving one document at a time (data cache cold, metadata warm)",
        ["configuration", "docs/s", "disk requests/doc"],
    )
    for r in results:
        table.add_row(r.label, "%.1f" % r.documents_per_second,
                      "%.2f" % r.requests_per_document)
    print(table.render())
    print()
    print("Name-space grouping co-locates /images with /images — but a")
    print("document's page and assets live in different directories, so")
    print("each group read hauls in mostly *other* documents' data.")
    print("A per-document group_context() hint puts one document's files")
    print("in one extent: one disk request serves the whole document.")
    print()
    print("Usage:")
    print('    with fs.group_context("doc:index"):')
    print('        fs.write_file("/pages/index.html", html)')
    print('        fs.write_file("/images/logo.gif", logo)')


if __name__ == "__main__":
    main()
