#!/usr/bin/env python3
"""Aging study (§4.3): does C-FFS's advantage survive churn?

Ages fresh file systems to several utilizations with the
[Herrin93]-style create/delete program, then measures small-file read
and create throughput on each aged image.  Finishes with an offline
check of the most-aged C-FFS image.

Run:  python examples/aging_study.py
"""

from repro.analysis import format_series
from repro.cache.policy import MetadataPolicy
from repro.fsck import fsck_cffs
from repro.workloads import age_filesystem, build_filesystem, run_smallfile

UTILIZATIONS = (0.1, 0.4, 0.7)
OPERATIONS = 4000
N_FILES = 1000


def main() -> None:
    read = {}
    create = {}
    last_cffs = None
    for label in ("conventional", "cffs"):
        read[label] = []
        create[label] = []
        for util in UTILIZATIONS:
            fs = build_filesystem(label, MetadataPolicy.SYNC_METADATA)
            info = age_filesystem(fs, target_utilization=util,
                                  operations=OPERATIONS)
            res = run_smallfile(fs, n_files=N_FILES, file_size=1024)
            read[label].append(res["read"].files_per_second)
            create[label].append(res["create"].files_per_second)
            print("%-12s aged to %4.0f%% (%5d creates, %5d deletes): "
                  "read %6.0f files/s, create %6.0f files/s" % (
                      label, info.utilization * 100, info.creations,
                      info.deletions, read[label][-1], create[label][-1]))
            if label == "cffs":
                last_cffs = fs
        print()

    xs = ["%.0f%%" % (u * 100) for u in UTILIZATIONS]
    print(format_series(
        "Read throughput on aged file systems", "utilization", xs,
        [(l, read[l]) for l in read], unit="files/s",
    ))
    print()
    print(format_series(
        "Create throughput on aged file systems", "utilization", xs,
        [(l, create[l]) for l in create], unit="files/s",
    ))
    print()
    ratios = [read["cffs"][i] / read["conventional"][i]
              for i in range(len(UTILIZATIONS))]
    print("C-FFS read advantage by utilization:",
          ", ".join("%.1fx" % r for r in ratios))
    print()
    report = fsck_cffs(last_cffs.device)
    print("offline check of the most-aged C-FFS image:",
          "clean" if report.ok else report.render())


if __name__ == "__main__":
    main()
