#!/usr/bin/env python3
"""Design-space tour: the knobs behind the paper's design choices.

Three mini-studies on the small-file benchmark:

1. explicit-group span (the paper picks 16 blocks = 64 KB),
2. metadata integrity mode (sync ordering writes vs soft-updates
   emulation),
3. which technique buys what (the full 2x2 grid).

Run:  python examples/grouping_tuning.py
"""

from repro.analysis import Table, format_series
from repro.cache.policy import MetadataPolicy
from repro.workloads import build_filesystem, run_smallfile

N_FILES = 2500


def study_group_span() -> None:
    spans = (4, 8, 16)
    reads, creates = [], []
    for span in spans:
        fs = build_filesystem("cffs", MetadataPolicy.SYNC_METADATA,
                              group_span=span)
        res = run_smallfile(fs, n_files=N_FILES, file_size=1024)
        reads.append(res["read"].files_per_second)
        creates.append(res["create"].files_per_second)
    print(format_series(
        "Group span vs throughput (files/s)", "span (4KB blocks)",
        list(spans), [("read", reads), ("create", creates)],
    ))
    print()


def study_integrity_modes() -> None:
    table = Table(
        "Integrity mode vs create/delete throughput (files/s)",
        ["configuration", "create sync", "create softdep",
         "delete sync", "delete softdep"],
    )
    for label in ("conventional", "cffs"):
        row = [label]
        for policy in (MetadataPolicy.SYNC_METADATA, MetadataPolicy.DELAYED_METADATA):
            fs = build_filesystem(label, policy)
            res = run_smallfile(fs, n_files=N_FILES, file_size=1024)
            row.append("%.0f" % res["create"].files_per_second)
            row.append("%.0f" % res["delete"].files_per_second)
        # Reorder: create sync, create softdep, delete sync, delete softdep.
        table.add_row(row[0], row[1], row[3], row[2], row[4])
    table.caption = ("embedded inodes halve the ordering writes; soft "
                     "updates remove them — and grouping still matters after that")
    print(table.render())
    print()


def study_grid() -> None:
    table = Table(
        "Technique attribution (files/s, sync metadata)",
        ["configuration", "create", "read", "overwrite", "delete"],
    )
    for label in ("conventional", "embedded", "grouping", "cffs"):
        fs = build_filesystem(label, MetadataPolicy.SYNC_METADATA)
        res = run_smallfile(fs, n_files=N_FILES, file_size=1024)
        table.add_row(label, *("%.0f" % res[p].files_per_second
                               for p in ("create", "read", "overwrite", "delete")))
    table.caption = ("embedding buys metadata ops (create/delete); "
                     "grouping buys data movement (read/overwrite); "
                     "C-FFS composes both")
    print(table.render())


def main() -> None:
    study_group_span()
    study_integrity_modes()
    study_grid()


if __name__ == "__main__":
    main()
