#!/usr/bin/env python3
"""Record a workload once, replay it everywhere.

A :class:`TracingFileSystem` records every operation of a working
session into a plain-text trace; replaying the trace against each
configuration of the grid measures them on *identical* activity — the
methodology behind every comparison in the paper.

Run:  python examples/trace_replay.py
"""

from repro.analysis import Table
from repro.cache.policy import MetadataPolicy
from repro.workloads import Trace, TracingFileSystem, build_filesystem, replay


def record_session() -> Trace:
    """A small development session: project setup, edits, cleanup."""
    fs = TracingFileSystem(build_filesystem("cffs", MetadataPolicy.SYNC_METADATA))
    fs.mkdir("/proj")
    fs.mkdir("/proj/src")
    fs.mkdir("/proj/build")
    for i in range(60):
        fs.write_file("/proj/src/mod%02d.c" % i, b"c" * (800 + 113 * i % 4000))
    fs.sync()
    # An edit/build cycle.
    for round_ in range(3):
        for i in range(0, 60, 3):
            fs.read_file("/proj/src/mod%02d.c" % i)
        for i in range(0, 60, 3):
            fs.write_file("/proj/build/mod%02d.o" % i, b"o" * 2400)
        fs.sync()
    # Cleanup.
    for i in range(0, 60, 3):
        fs.unlink("/proj/build/mod%02d.o" % i)
    fs.sync()
    return fs.trace


def main() -> None:
    trace = record_session()
    print("recorded %d operations; first lines of the trace:" % len(trace))
    for line in trace.dumps().splitlines()[:5]:
        print("   ", line)
    print("    ...")
    print()

    table = Table(
        "One trace, every configuration (simulated seconds)",
        ["configuration", "seconds", "disk requests"],
    )
    for label in ("conventional", "embedded", "grouping", "cffs"):
        fs = build_filesystem(label, MetadataPolicy.SYNC_METADATA)
        result = replay(trace, fs, label=label)
        table.add_row(label, "%.2f" % result.seconds, result.disk_requests)
    table.caption = "identical operations; only the on-disk layout differs"
    print(table.render())


if __name__ == "__main__":
    main()
