#!/usr/bin/env python3
"""Software-development workloads: conventional FS vs C-FFS (§4.4).

Builds the same synthetic source tree on both configurations and runs
the four application-shaped passes (copy, scan, compile, clean).  The
paper reports improvements "ranging from 10-300 percent" for such
workloads.

Run:  python examples/software_dev.py
"""

from repro.analysis import Table, percent_improvement
from repro.cache.policy import MetadataPolicy
from repro.workloads import build_filesystem, build_source_tree, run_app_suite


def main() -> None:
    results = {}
    for label in ("conventional", "cffs"):
        fs = build_filesystem(label, MetadataPolicy.SYNC_METADATA)
        tree = build_source_tree(fs, n_dirs=10, files_per_dir=30)
        print("built %s tree on %-12s: %d files, %.1f MB"
              % (tree.root, label, len(tree.files), tree.total_bytes / 1e6))
        results[label] = run_app_suite(fs, tree, label=label)

    print()
    table = Table(
        "Software-development suite (simulated seconds)",
        ["pass", "conventional", "cffs", "improvement", "requests conv->cffs"],
    )
    for name in ("copy", "scan", "compile", "clean"):
        conv = results["conventional"]
        cffs = results["cffs"]
        table.add_row(
            name,
            "%.2f s" % conv.seconds[name],
            "%.2f s" % cffs.seconds[name],
            "%.0f%%" % percent_improvement(conv.seconds[name], cffs.seconds[name]),
            "%d -> %d" % (conv.requests[name], cffs.requests[name]),
        )
    table.caption = "paper's reported range for such applications: 10-300%"
    print(table.render())


if __name__ == "__main__":
    main()
